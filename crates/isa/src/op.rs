use std::fmt;

/// Operation classes distinguished by the timing model (paper Table 3).
///
/// The simulator does not interpret instruction semantics — workloads are
/// synthetic streams — so only the properties that affect timing are
/// modelled: which functional unit an operation occupies, how long it
/// occupies it, when its result becomes available for forwarding, whether it
/// references memory, and whether it redirects control flow.
///
/// Two special operations exist for latency tolerance (paper Section 4.2):
///
/// * [`Op::Backoff`] — the interleaved scheme's backoff instruction: makes
///   the issuing context unavailable for a number of cycles encoded in the
///   instruction (cost 1 cycle, Table 4).
/// * [`Op::SwitchHint`] — the blocked scheme's explicit context-switch
///   instruction (cost 3 cycles, Table 4). On the interleaved and
///   single-context processors it retires as a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Single-cycle integer ALU operation (add, logical, compare, ...).
    IntAlu,
    /// Shift operation (issue 1, latency 2).
    Shift,
    /// Integer multiply (reconstructed: issue 1, latency 4).
    IntMul,
    /// Integer divide (reconstructed: non-pipelined, issue 35, latency 35).
    IntDiv,
    /// Memory load (two delay slots: result at end of DF2, latency 3).
    Load,
    /// Memory store (no register result).
    Store,
    /// Non-binding software prefetch (Mowry-style): starts a line fill but
    /// never blocks or switches the context. One of the alternative
    /// latency-tolerance techniques the paper's introduction compares
    /// against.
    Prefetch,
    /// Conditional or unconditional branch, resolved in EX.
    Branch,
    /// Floating-point add/subtract (issue 1, latency 5).
    FpAdd,
    /// Floating-point multiply (issue 1, latency 5).
    FpMul,
    /// Floating-point conversion (issue 1, latency 5).
    FpConv,
    /// Single-precision FP divide (non-pipelined, issue 31, latency 31).
    FpDivSingle,
    /// Double-precision FP divide (non-pipelined, issue 61, latency 61).
    FpDivDouble,
    /// Backoff instruction: context becomes unavailable for `Instr::backoff`
    /// cycles (interleaved scheme only; retires as a no-op elsewhere).
    Backoff,
    /// Explicit context-switch instruction (blocked scheme only; retires as
    /// a no-op elsewhere).
    SwitchHint,
    /// Synchronization operation (lock acquire/release, barrier arrival).
    /// The processor consults its synchronization port when this issues;
    /// see `Instr::sync`.
    Sync,
    /// No-operation (also used for wrong-path fetch bubbles).
    Nop,
}

/// Functional units the scoreboard tracks for structural hazards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Integer ALU (also executes branches' condition evaluation).
    IntAlu,
    /// Integer multiply/divide unit (non-pipelined divides).
    IntMulDiv,
    /// Data-memory port (address generation + D-cache access).
    Mem,
    /// Floating-point adder (add/sub/convert).
    FpAdd,
    /// Floating-point multiplier.
    FpMul,
    /// Floating-point divider (non-pipelined).
    FpDiv,
}

impl Op {
    /// The functional unit this operation occupies, if any.
    ///
    /// `Nop`, `Backoff`, and `SwitchHint` occupy no unit.
    pub fn fu(self) -> Option<FuKind> {
        match self {
            Op::IntAlu | Op::Shift | Op::Branch => Some(FuKind::IntAlu),
            Op::IntMul | Op::IntDiv => Some(FuKind::IntMulDiv),
            Op::Load | Op::Store | Op::Prefetch => Some(FuKind::Mem),
            Op::FpAdd | Op::FpConv => Some(FuKind::FpAdd),
            Op::FpMul => Some(FuKind::FpMul),
            Op::FpDivSingle | Op::FpDivDouble => Some(FuKind::FpDiv),
            Op::Backoff | Op::SwitchHint | Op::Sync | Op::Nop => None,
        }
    }

    /// Whether this operation references data memory.
    pub fn is_mem(self) -> bool {
        matches!(self, Op::Load | Op::Store | Op::Prefetch)
    }

    /// Whether this operation redirects control flow.
    pub fn is_branch(self) -> bool {
        matches!(self, Op::Branch)
    }

    /// Whether this operation executes in the nine-stage FP pipeline.
    ///
    /// FP loads/stores use the integer pipeline's memory stages (as on the
    /// R4000); only FP arithmetic flows down the FP pipe.
    pub fn is_fp(self) -> bool {
        matches!(self, Op::FpAdd | Op::FpMul | Op::FpConv | Op::FpDivSingle | Op::FpDivDouble)
    }

    /// Whether this is one of the non-pipelined long operations (divides).
    pub fn is_divide(self) -> bool {
        matches!(self, Op::IntDiv | Op::FpDivSingle | Op::FpDivDouble)
    }

    /// All operation classes, for exhaustive table construction and tests.
    pub const ALL: [Op; 17] = [
        Op::IntAlu,
        Op::Shift,
        Op::IntMul,
        Op::IntDiv,
        Op::Load,
        Op::Store,
        Op::Prefetch,
        Op::Branch,
        Op::FpAdd,
        Op::FpMul,
        Op::FpConv,
        Op::FpDivSingle,
        Op::FpDivDouble,
        Op::Backoff,
        Op::SwitchHint,
        Op::Sync,
        Op::Nop,
    ];
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::IntAlu => "alu",
            Op::Shift => "shift",
            Op::IntMul => "mul",
            Op::IntDiv => "div",
            Op::Load => "load",
            Op::Store => "store",
            Op::Prefetch => "prefetch",
            Op::Branch => "branch",
            Op::FpAdd => "fadd",
            Op::FpMul => "fmul",
            Op::FpConv => "fconv",
            Op::FpDivSingle => "fdiv.s",
            Op::FpDivDouble => "fdiv.d",
            Op::Backoff => "backoff",
            Op::SwitchHint => "switch",
            Op::Sync => "sync",
            Op::Nop => "nop",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_exhaustive_and_unique() {
        for (i, a) in Op::ALL.iter().enumerate() {
            for b in &Op::ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(Op::ALL.len(), 17);
    }

    #[test]
    fn mem_ops() {
        assert!(Op::Load.is_mem());
        assert!(Op::Store.is_mem());
        assert!(Op::Prefetch.is_mem());
        assert!(!Op::IntAlu.is_mem());
        assert_eq!(Op::Load.fu(), Some(FuKind::Mem));
    }

    #[test]
    fn fp_ops_use_fp_pipe() {
        for op in [Op::FpAdd, Op::FpMul, Op::FpConv, Op::FpDivSingle, Op::FpDivDouble] {
            assert!(op.is_fp(), "{op} should be FP");
        }
        // FP loads use the integer pipe.
        assert!(!Op::Load.is_fp());
    }

    #[test]
    fn divides_are_divides() {
        assert!(Op::IntDiv.is_divide());
        assert!(Op::FpDivSingle.is_divide());
        assert!(Op::FpDivDouble.is_divide());
        assert!(!Op::FpMul.is_divide());
    }

    #[test]
    fn pseudo_ops_have_no_fu() {
        assert_eq!(Op::Nop.fu(), None);
        assert_eq!(Op::Backoff.fu(), None);
        assert_eq!(Op::SwitchHint.fu(), None);
        assert_eq!(Op::Sync.fu(), None);
    }

    #[test]
    fn branch_uses_int_alu() {
        assert!(Op::Branch.is_branch());
        assert_eq!(Op::Branch.fu(), Some(FuKind::IntAlu));
    }

    #[test]
    fn display_is_nonempty() {
        for op in Op::ALL {
            assert!(!op.to_string().is_empty());
        }
    }
}
