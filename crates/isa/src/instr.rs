use crate::{Op, Reg};

/// Direction of a data-memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// A resolved data-memory reference carried by a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Effective byte address.
    pub addr: u64,
    /// Read (load) or write (store).
    pub kind: Access,
}

/// Resolved branch behaviour carried by a branch instruction.
///
/// The stream generators pre-resolve every branch: the pipeline model
/// compares this ground truth against the BTB's prediction to charge
/// misprediction penalties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Whether the branch is taken.
    pub taken: bool,
    /// Target address when taken.
    pub target: u64,
}

/// What a synchronization instruction does when it issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// Acquire a lock; the context waits until the lock is granted.
    LockAcquire,
    /// Release a lock (never waits).
    LockRelease,
    /// Arrive at a barrier; the context waits until all participants arrive.
    BarrierArrive,
}

/// A synchronization reference carried by an [`Op::Sync`] instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncRef {
    /// Operation kind.
    pub kind: SyncKind,
    /// Lock or barrier identifier, scoped by the synchronization port.
    pub id: u32,
}

/// A decoded instruction as consumed by the pipeline model.
///
/// Operands are already resolved (the workload generators know outcomes),
/// so an `Instr` carries at most one destination register, up to two source
/// registers, an optional memory reference, and optional branch information.
///
/// Construct instructions with the typed constructors ([`Instr::alu`],
/// [`Instr::load`], [`Instr::branch`], ...) rather than filling fields by
/// hand; the constructors keep op-class and operand kinds consistent.
///
/// # Examples
///
/// ```
/// use interleave_isa::{Instr, Op, Reg};
///
/// let i = Instr::alu(0x40, Some(Reg::int(3)), Some(Reg::int(1)), Some(Reg::int(2)));
/// assert_eq!(i.op, Op::IntAlu);
/// assert_eq!(i.dst, Some(Reg::int(3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Program counter of this instruction.
    pub pc: u64,
    /// Operation class.
    pub op: Op,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// First source register, if any.
    pub src1: Option<Reg>,
    /// Second source register, if any.
    pub src2: Option<Reg>,
    /// Memory reference for loads/stores.
    pub mem: Option<MemRef>,
    /// Resolved branch behaviour for branches.
    pub branch: Option<BranchInfo>,
    /// Backoff duration in cycles for [`Op::Backoff`] instructions.
    pub backoff: u32,
    /// Synchronization reference for [`Op::Sync`] instructions.
    pub sync: Option<SyncRef>,
}

impl Instr {
    fn base(pc: u64, op: Op) -> Instr {
        Instr {
            pc,
            op,
            dst: None,
            src1: None,
            src2: None,
            mem: None,
            branch: None,
            backoff: 0,
            sync: None,
        }
    }

    /// A single-cycle integer ALU operation.
    pub fn alu(pc: u64, dst: Option<Reg>, src1: Option<Reg>, src2: Option<Reg>) -> Instr {
        Instr { dst, src1, src2, ..Self::base(pc, Op::IntAlu) }
    }

    /// A generic arithmetic operation of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `op` is a memory, branch, backoff, or switch operation —
    /// use the dedicated constructors for those.
    pub fn arith(pc: u64, op: Op, dst: Option<Reg>, src1: Option<Reg>, src2: Option<Reg>) -> Instr {
        assert!(
            !op.is_mem() && !op.is_branch() && !matches!(op, Op::Backoff | Op::SwitchHint),
            "use the dedicated constructor for {op}"
        );
        Instr { dst, src1, src2, ..Self::base(pc, op) }
    }

    /// A load from `addr` into `dst`, addressed via base register `base`.
    pub fn load(pc: u64, dst: Reg, base: Reg, addr: u64) -> Instr {
        Instr {
            dst: Some(dst),
            src1: Some(base),
            mem: Some(MemRef { addr, kind: Access::Read }),
            ..Self::base(pc, Op::Load)
        }
    }

    /// A store of register `value` to `addr`, addressed via base register
    /// `base`.
    pub fn store(pc: u64, value: Reg, base: Reg, addr: u64) -> Instr {
        Instr {
            src1: Some(base),
            src2: Some(value),
            mem: Some(MemRef { addr, kind: Access::Write }),
            ..Self::base(pc, Op::Store)
        }
    }

    /// A branch at `pc` with resolved outcome, conditioned on `cond`.
    pub fn branch(pc: u64, cond: Option<Reg>, taken: bool, target: u64) -> Instr {
        Instr {
            src1: cond,
            branch: Some(BranchInfo { taken, target }),
            ..Self::base(pc, Op::Branch)
        }
    }

    /// A backoff instruction making the issuing context unavailable for
    /// `cycles` cycles (interleaved scheme; a no-op elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn backoff(pc: u64, cycles: u32) -> Instr {
        assert!(cycles > 0, "backoff must cover at least one cycle");
        Instr { backoff: cycles, ..Self::base(pc, Op::Backoff) }
    }

    /// An explicit context-switch hint (blocked scheme; a no-op elsewhere).
    pub fn switch_hint(pc: u64) -> Instr {
        Self::base(pc, Op::SwitchHint)
    }

    /// A no-op (also used to model wrong-path fetch bubbles).
    pub fn nop(pc: u64) -> Instr {
        Self::base(pc, Op::Nop)
    }

    /// A non-binding software prefetch of the line containing `addr`.
    pub fn prefetch(pc: u64, base: Reg, addr: u64) -> Instr {
        Instr {
            src1: Some(base),
            mem: Some(MemRef { addr, kind: Access::Read }),
            ..Self::base(pc, Op::Prefetch)
        }
    }

    /// A synchronization operation on lock/barrier `id`.
    pub fn sync(pc: u64, kind: SyncKind, id: u32) -> Instr {
        Instr { sync: Some(SyncRef { kind, id }), ..Self::base(pc, Op::Sync) }
    }

    /// Source registers that participate in dependence checking.
    ///
    /// The hardwired-zero register is filtered out.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        [self.src1, self.src2].into_iter().flatten().filter(|r| !r.is_zero())
    }

    /// Destination register that participates in dependence checking.
    ///
    /// Writes to the hardwired-zero register are discarded.
    pub fn dest(&self) -> Option<Reg> {
        self.dst.filter(|r| !r.is_zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_carries_mem_ref() {
        let i = Instr::load(0, Reg::int(2), Reg::int(29), 0xABC0);
        assert_eq!(i.op, Op::Load);
        let m = i.mem.unwrap();
        assert_eq!(m.addr, 0xABC0);
        assert_eq!(m.kind, Access::Read);
        assert_eq!(i.dest(), Some(Reg::int(2)));
    }

    #[test]
    fn store_has_no_dest() {
        let i = Instr::store(0, Reg::int(2), Reg::int(29), 0xABC0);
        assert_eq!(i.dest(), None);
        assert_eq!(i.mem.unwrap().kind, Access::Write);
        assert_eq!(i.sources().count(), 2);
    }

    #[test]
    fn branch_carries_outcome() {
        let i = Instr::branch(0x10, Some(Reg::int(5)), true, 0x80);
        let b = i.branch.unwrap();
        assert!(b.taken);
        assert_eq!(b.target, 0x80);
    }

    #[test]
    fn zero_register_filtered_from_deps() {
        let i = Instr::alu(0, Some(Reg::ZERO), Some(Reg::ZERO), Some(Reg::int(1)));
        assert_eq!(i.dest(), None);
        assert_eq!(i.sources().collect::<Vec<_>>(), vec![Reg::int(1)]);
    }

    #[test]
    fn backoff_duration() {
        let i = Instr::backoff(0, 25);
        assert_eq!(i.op, Op::Backoff);
        assert_eq!(i.backoff, 25);
    }

    #[test]
    #[should_panic]
    fn zero_backoff_rejected() {
        let _ = Instr::backoff(0, 0);
    }

    #[test]
    #[should_panic]
    fn arith_rejects_mem_ops() {
        let _ = Instr::arith(0, Op::Load, None, None, None);
    }

    #[test]
    fn prefetch_is_memory_but_binds_nothing() {
        let i = Instr::prefetch(0, Reg::int(29), 0x2000);
        assert_eq!(i.op, Op::Prefetch);
        assert_eq!(i.dest(), None);
        assert_eq!(i.mem.unwrap().addr, 0x2000);
    }

    #[test]
    fn sync_carries_ref() {
        let i = Instr::sync(0, SyncKind::BarrierArrive, 7);
        assert_eq!(i.op, Op::Sync);
        let s = i.sync.unwrap();
        assert_eq!(s.kind, SyncKind::BarrierArrive);
        assert_eq!(s.id, 7);
    }

    #[test]
    fn arith_accepts_fp() {
        let i =
            Instr::arith(0, Op::FpDivDouble, Some(Reg::fp(0)), Some(Reg::fp(1)), Some(Reg::fp(2)));
        assert_eq!(i.op, Op::FpDivDouble);
        assert_eq!(i.sources().count(), 2);
    }
}
