//! Instruction-set and operation-timing model for the interleave simulator.
//!
//! The simulated processor executes a MIPS-II-like instruction set with the
//! delayed branches removed, as described in Section 4.1 of Laudon, Gupta &
//! Horowitz (ASPLOS 1994). This crate defines:
//!
//! * [`Reg`] — architectural register identifiers (32 integer + 32 FP),
//! * [`Op`] — the operation classes the timing model distinguishes,
//! * [`Instr`] — a decoded instruction as consumed by the pipeline model,
//! * [`TimingModel`] — per-operation issue occupancy and result latency
//!   (the paper's Table 3).
//!
//! The simulator is trace/stream driven: instructions are produced by
//! synthetic workload generators (see the `interleave-workloads` crate)
//! rather than decoded from binary machine code, so `Instr` carries resolved
//! operands (register names, effective addresses, branch outcomes) directly.
//!
//! # Examples
//!
//! ```
//! use interleave_isa::{Instr, Op, Reg, TimingModel};
//!
//! let timing = TimingModel::r4000_like();
//! let load = Instr::load(0x100, Reg::int(4), Reg::int(5), 0x8000);
//! assert_eq!(load.op, Op::Load);
//! // Loads have two delay slots: result latency 3.
//! assert_eq!(timing.timing(Op::Load).latency, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod instr;
mod op;
mod reg;
mod timing;

pub use instr::{Access, BranchInfo, Instr, MemRef, SyncKind, SyncRef};
pub use op::{FuKind, Op};
pub use reg::Reg;
pub use timing::{OpTiming, TimingModel};
