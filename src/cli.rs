//! Argument parsing and report rendering for the `interleave-sim` binary.
//!
//! Hand-rolled (no external dependencies): subcommands `uni`, `mp`,
//! `sweep`, `profile`, `serve`, `submit`, `poll`, `watch`, `trace`,
//! `metrics`, and `list`, each with `--flag value` options (plus bare
//! switches such as `--progress` and `--once`); `watch` additionally
//! takes a positional status-file path or a
//! `http://host:port/jobs/<id>/events` stream URL, and `poll` an
//! optional positional job id.

use crate::bench::{merge, Runner, Scale, Shard};
use crate::core::Scheme;
use crate::mp::{splash_suite, MpSim, SplashProfile};
use crate::obs::Metric;
use crate::stats::{Category, Table};
use crate::workloads::mixes::{self, Workload};
use crate::workloads::{MultiprogramSim, SyntheticApp};

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a workstation multiprogramming simulation.
    Uni {
        /// Table 5 workload.
        workload: String,
        /// Scheduling scheme.
        scheme: Scheme,
        /// Hardware contexts.
        contexts: usize,
        /// Instructions per application.
        quota: u64,
        /// Stream seed.
        seed: u64,
    },
    /// Run a multiprocessor simulation.
    Mp {
        /// SPLASH application name.
        app: String,
        /// Scheduling scheme.
        scheme: Scheme,
        /// Nodes in the machine.
        nodes: usize,
        /// Contexts per node.
        contexts: usize,
        /// Total instructions of work.
        work: u64,
        /// Stream seed.
        seed: u64,
    },
    /// Run a whole experiment grid on the parallel sweep runner.
    Sweep {
        /// Grid to run: `table7` (workstation), `table10`
        /// (multiprocessor), or `smoke` (seconds-long CI throughput
        /// check).
        artifact: String,
        /// Worker threads (`None` = `INTERLEAVE_JOBS` / machine).
        jobs: Option<usize>,
        /// Problem scale (`None` = `INTERLEAVE_FULL`).
        scale: Option<Scale>,
        /// Directory for the `BENCH_<artifact>.json` and
        /// `METRICS_<artifact>.json` artifacts.
        json: Option<String>,
        /// Explicit stream seed (`None` = the sims' defaults).
        seed: Option<u64>,
        /// Host threads per multiprocessor cell (`None` =
        /// `INTERLEAVE_MP_JOBS` / serial). Purely a host-side knob:
        /// results are bit-identical at every value.
        mp_jobs: Option<usize>,
        /// Adaptive lookahead widening for multiprocessor cells (`None`
        /// = `INTERLEAVE_ADAPTIVE` / on). Purely a host-side knob:
        /// results are bit-identical either way.
        adaptive: Option<bool>,
        /// Run only one disjoint slice of the grid (`--shard K/N`;
        /// `None` = `INTERLEAVE_SHARD` / whole grid). Shard identity is
        /// stamped into the artifact names and headers for `merge`.
        shard: Option<Shard>,
        /// Per-cell checkpoint directory (`None` =
        /// `INTERLEAVE_CHECKPOINT_DIR` / no checkpointing). An
        /// interrupted sweep rerun with the same directory resumes its
        /// completed cells.
        checkpoint_dir: Option<String>,
        /// Print a per-second completion heartbeat to stderr.
        progress: bool,
    },
    /// Fold shard sweep artifacts back into the canonical
    /// single-process `BENCH_*`/`METRICS_*` documents.
    Merge {
        /// Output directory for the merged artifacts.
        out: String,
        /// Directories holding `BENCH_*.shard<K>of<N>.json` (and their
        /// `METRICS_*` counterparts); positional, at least one.
        dirs: Vec<String>,
    },
    /// Run an experiment grid under the host-phase profiler and print
    /// a sorted phase table.
    Profile {
        /// Grid to run (same names as `sweep`).
        artifact: String,
        /// Worker threads (`None` = `INTERLEAVE_JOBS` / machine).
        jobs: Option<usize>,
        /// Problem scale (`None` = `INTERLEAVE_FULL`).
        scale: Option<Scale>,
        /// Directory for `BENCH_*`/`METRICS_*`/`PROFILE_*` artifacts.
        json: Option<String>,
        /// Explicit stream seed (`None` = the sims' defaults).
        seed: Option<u64>,
        /// Where to write a Chrome trace of the recorded host spans.
        trace_out: Option<String>,
    },
    /// Run the simulation service daemon (`interleave-sim serve`).
    Serve {
        /// `host:port` to bind (`None` = `INTERLEAVE_ADDR` /
        /// `127.0.0.1:4994`). Port 0 binds an ephemeral port; the bound
        /// address is printed for scripts to capture.
        addr: Option<String>,
        /// Pending-queue bound before `POST /jobs` answers 429 (`None`
        /// = `INTERLEAVE_QUEUE_DEPTH` / 64).
        queue_depth: Option<usize>,
        /// Worker threads draining the queue (`None` = machine-sized).
        workers: Option<usize>,
        /// Content-addressed result-cache directory (`None` =
        /// `INTERLEAVE_CACHE_DIR` / no caching).
        cache_dir: Option<String>,
        /// Per-job `STATUS_*.json` mirror root (`None` = bus-only).
        status_dir: Option<String>,
    },
    /// Submit a job to a running daemon and optionally wait for it.
    Submit {
        /// Daemon address (`None` = `INTERLEAVE_ADDR` /
        /// `127.0.0.1:4994`); `http://host:port` prefixes are accepted.
        addr: Option<String>,
        /// Grid to run (same names as `sweep`).
        artifact: String,
        /// Problem scale (`None` = the server default, ci).
        scale: Option<Scale>,
        /// Explicit stream seed (result-affecting).
        seed: Option<u64>,
        /// Worker threads for this job (bit-invisible, server-capped).
        jobs: Option<usize>,
        /// Host threads per multiprocessor cell (bit-invisible).
        mp_jobs: Option<usize>,
        /// Adaptive lookahead widening (bit-invisible).
        adaptive: Option<bool>,
        /// Poll the job to completion before exiting.
        wait: bool,
        /// Fetch the finished `BENCH_*`/`METRICS_*` artifacts into this
        /// directory (implies `wait`) along with a `SERVE_*` round-trip
        /// timing document.
        json: Option<String>,
        /// Give up waiting after this many seconds.
        timeout_secs: u64,
    },
    /// Query a running daemon: job status, `--stats`, or (with no id)
    /// `/healthz`.
    Poll {
        /// Daemon address (`None` = `INTERLEAVE_ADDR` /
        /// `127.0.0.1:4994`).
        addr: Option<String>,
        /// Job id to query (positional; `None` = server health).
        id: Option<u64>,
        /// Query `/stats` instead of a job.
        stats: bool,
    },
    /// Tail a `STATUS_*.json` file written by a concurrent sweep, or
    /// stream a daemon's `/jobs/<id>/events` URL.
    Watch {
        /// Status file to poll, or a `http://host:port/jobs/<id>/events`
        /// URL to stream (positional argument).
        file: String,
        /// Render the current snapshot once and exit.
        once: bool,
        /// Poll interval in milliseconds.
        interval_ms: u64,
        /// Give up after this many seconds (`None` = wait forever).
        timeout_secs: Option<u64>,
    },
    /// Run with per-cycle tracing and export a Chrome trace-event JSON.
    Trace {
        /// Trace file to replay on context 0 (`None` = drive the
        /// synthetic `workload` on every context).
        file: Option<String>,
        /// Table 5 workload used when no file is given.
        workload: String,
        /// Scheduling scheme.
        scheme: Scheme,
        /// Hardware contexts.
        contexts: usize,
        /// Cycle budget for the traced run.
        max_cycles: u64,
        /// Stream seed for the synthetic workload.
        seed: u64,
        /// Where to write the Chrome trace JSON (`None` = report only).
        out: Option<String>,
    },
    /// Run a multiprogramming simulation and print its metric registry.
    Metrics {
        /// Table 5 workload.
        workload: String,
        /// Scheduling scheme.
        scheme: Scheme,
        /// Hardware contexts.
        contexts: usize,
        /// Instructions per application.
        quota: u64,
        /// Stream seed.
        seed: u64,
        /// Where to write the registry JSON (`None` = table only).
        json: Option<String>,
    },
    /// List available workloads and applications.
    List,
    /// Show usage.
    Help,
}

/// Error produced for invalid command lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn parse_scheme(value: &str) -> Result<Scheme, CliError> {
    match value.to_ascii_lowercase().as_str() {
        "single" => Ok(Scheme::Single),
        "blocked" => Ok(Scheme::Blocked),
        "interleaved" => Ok(Scheme::Interleaved),
        "fine-grained" | "finegrained" | "hep" => Ok(Scheme::FineGrained),
        other => Err(CliError(format!(
            "unknown scheme `{other}` (expected single, blocked, interleaved, fine-grained)"
        ))),
    }
}

struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Flags<'a> {
    /// Parses `--flag value` pairs; names listed in `switches` take no
    /// value and read back as `"1"`.
    fn parse(args: &'a [String], switches: &[&str]) -> Result<Flags<'a>, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(CliError(format!("expected a --flag, got `{flag}`")));
            };
            if switches.contains(&name) {
                pairs.push((name, "1"));
                continue;
            }
            let Some(value) = it.next() else {
                return Err(CliError(format!("--{name} needs a value")));
            };
            pairs.push((name, value.as_str()));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    fn switch(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    fn num(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| CliError(format!("--{name} expects a number, got `{v}`")))
            }
        }
    }

    fn opt_num(&self, name: &str) -> Result<Option<u64>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError(format!("--{name} expects a number, got `{v}`"))),
        }
    }

    fn scheme(&self, default: Scheme) -> Result<Scheme, CliError> {
        match self.get("scheme") {
            None => Ok(default),
            Some(v) => parse_scheme(v),
        }
    }

    fn scale(&self) -> Result<Option<Scale>, CliError> {
        match self.get("scale") {
            None => Ok(None),
            Some(v) => Scale::parse(v)
                .map(Some)
                .ok_or_else(|| CliError(format!("--scale expects `ci` or `full`, got `{v}`"))),
        }
    }

    fn on_off(&self, name: &str) -> Result<Option<bool>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some("on") => Ok(Some(true)),
            Some("off") => Ok(Some(false)),
            Some(v) => Err(CliError(format!("--{name} expects `on` or `off`, got `{v}`"))),
        }
    }

    fn shard(&self) -> Result<Option<Shard>, CliError> {
        match self.get("shard") {
            None => Ok(None),
            Some(v) => Shard::parse(v).map(Some).ok_or_else(|| {
                CliError(format!("--shard expects K/N with 1 <= K <= N, got `{v}`"))
            }),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
interleave-sim — cycle-level multiple-context processor simulator

USAGE:
  interleave-sim uni   [--workload IC|DC|DT|FP|R0|R1|SP] [--scheme S] [--contexts N]
                       [--quota N] [--seed N]
  interleave-sim mp    [--app NAME] [--scheme S] [--nodes N] [--contexts N]
                       [--work N] [--seed N]
  interleave-sim sweep --artifact table7|table10|smoke [--jobs N] [--mp-jobs N]
                       [--adaptive on|off] [--scale ci|full] [--json DIR]
                       [--seed N] [--shard K/N] [--checkpoint-dir DIR]
                       [--progress]
  interleave-sim merge --out DIR SHARD_DIR [SHARD_DIR ...]
  interleave-sim profile --artifact table7|table10|smoke [--jobs N]
                       [--scale ci|full] [--json DIR] [--seed N]
                       [--trace-out PATH]
  interleave-sim serve [--addr HOST:PORT] [--queue-depth N] [--workers N]
                       [--cache-dir DIR] [--status-dir DIR]
  interleave-sim submit --artifact table7|table10|smoke [--addr HOST:PORT]
                       [--scale ci|full] [--seed N] [--jobs N] [--mp-jobs N]
                       [--adaptive on|off] [--wait] [--json DIR]
                       [--timeout-secs N]
  interleave-sim poll  [JOB_ID] [--addr HOST:PORT] [--stats]
  interleave-sim watch STATUS_FILE_OR_EVENTS_URL [--once] [--interval-ms N]
                       [--timeout-secs N]
  interleave-sim trace [--file PATH] [--workload W] [--scheme S] [--contexts N]
                       [--max-cycles N] [--seed N] [--out PATH]
  interleave-sim metrics [--workload W] [--scheme S] [--contexts N] [--quota N]
                       [--seed N] [--json PATH]
  interleave-sim list
  interleave-sim help

SCHEMES: single, blocked, interleaved, fine-grained
";

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] on unknown subcommands, flags, or values.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    // `watch` takes its status file as a positional argument, so it is
    // parsed before the generic `--flag value` loop.
    if sub == "watch" {
        let Some(file) = args.get(1).filter(|a| !a.starts_with("--")) else {
            return Err(CliError("watch requires a status-file path".into()));
        };
        let flags = Flags::parse(&args[2..], &["once"])?;
        return Ok(Command::Watch {
            file: file.clone(),
            once: flags.switch("once"),
            interval_ms: flags.num("interval-ms", 250)?,
            timeout_secs: flags.opt_num("timeout-secs")?,
        });
    }
    // `merge` takes its shard directories as positional arguments, so
    // it is also parsed before the generic `--flag value` loop.
    if sub == "merge" {
        let mut out = None;
        let mut dirs = Vec::new();
        let mut it = args[1..].iter();
        while let Some(arg) = it.next() {
            if arg == "--out" {
                out =
                    Some(it.next().ok_or_else(|| CliError("--out needs a value".into()))?.clone());
            } else if let Some(flag) = arg.strip_prefix("--") {
                return Err(CliError(format!("merge does not take --{flag}")));
            } else {
                dirs.push(arg.clone());
            }
        }
        if dirs.is_empty() {
            return Err(CliError(
                "merge requires at least one shard-artifact directory (and --out DIR)".into(),
            ));
        }
        let out = out.ok_or_else(|| CliError("merge requires --out DIR".into()))?;
        return Ok(Command::Merge { out, dirs });
    }
    // `poll` takes an optional positional job id.
    if sub == "poll" {
        let (id, rest) = match args.get(1).filter(|a| !a.starts_with("--")) {
            Some(raw) => {
                let id = raw
                    .parse::<u64>()
                    .map_err(|_| CliError(format!("poll expects a numeric job id, got `{raw}`")))?;
                (Some(id), &args[2..])
            }
            None => (None, &args[1..]),
        };
        let flags = Flags::parse(rest, &["stats"])?;
        return Ok(Command::Poll {
            addr: flags.get("addr").map(str::to_string),
            id,
            stats: flags.switch("stats"),
        });
    }
    let flags = Flags::parse(&args[1..], &["progress", "wait"])?;
    match sub.as_str() {
        "uni" => Ok(Command::Uni {
            workload: flags.get("workload").unwrap_or("FP").to_string(),
            scheme: flags.scheme(Scheme::Interleaved)?,
            contexts: flags.num("contexts", 4)? as usize,
            quota: flags.num("quota", 40_000)?,
            seed: flags.num("seed", 0x19940501)?,
        }),
        "mp" => Ok(Command::Mp {
            app: flags.get("app").unwrap_or("Water").to_string(),
            scheme: flags.scheme(Scheme::Interleaved)?,
            nodes: flags.num("nodes", 8)? as usize,
            contexts: flags.num("contexts", 4)? as usize,
            work: flags.num("work", 400_000)?,
            seed: flags.num("seed", 0x19941004)?,
        }),
        "sweep" => Ok(Command::Sweep {
            artifact: flags
                .get("artifact")
                .ok_or_else(|| CliError("sweep requires --artifact table7|table10|smoke".into()))?
                .to_string(),
            jobs: flags.opt_num("jobs")?.map(|n| n as usize),
            scale: flags.scale()?,
            json: flags.get("json").map(str::to_string),
            seed: flags.opt_num("seed")?,
            mp_jobs: flags.opt_num("mp-jobs")?.map(|n| n as usize),
            adaptive: flags.on_off("adaptive")?,
            shard: flags.shard()?,
            checkpoint_dir: flags.get("checkpoint-dir").map(str::to_string),
            progress: flags.switch("progress"),
        }),
        "profile" => Ok(Command::Profile {
            artifact: flags
                .get("artifact")
                .ok_or_else(|| CliError("profile requires --artifact table7|table10|smoke".into()))?
                .to_string(),
            jobs: flags.opt_num("jobs")?.map(|n| n as usize),
            scale: flags.scale()?,
            json: flags.get("json").map(str::to_string),
            seed: flags.opt_num("seed")?,
            trace_out: flags.get("trace-out").map(str::to_string),
        }),
        "trace" => Ok(Command::Trace {
            file: flags.get("file").map(str::to_string),
            workload: flags.get("workload").unwrap_or("FP").to_string(),
            scheme: flags.scheme(Scheme::Interleaved)?,
            contexts: flags.num("contexts", 2)? as usize,
            max_cycles: flags.num("max-cycles", 20_000)?,
            seed: flags.num("seed", 0x19940501)?,
            out: flags.get("out").map(str::to_string),
        }),
        "metrics" => Ok(Command::Metrics {
            workload: flags.get("workload").unwrap_or("FP").to_string(),
            scheme: flags.scheme(Scheme::Interleaved)?,
            contexts: flags.num("contexts", 4)? as usize,
            quota: flags.num("quota", 40_000)?,
            seed: flags.num("seed", 0x19940501)?,
            json: flags.get("json").map(str::to_string),
        }),
        "serve" => Ok(Command::Serve {
            addr: flags.get("addr").map(str::to_string),
            queue_depth: flags.opt_num("queue-depth")?.map(|n| n as usize),
            workers: flags.opt_num("workers")?.map(|n| n as usize),
            cache_dir: flags.get("cache-dir").map(str::to_string),
            status_dir: flags.get("status-dir").map(str::to_string),
        }),
        "submit" => Ok(Command::Submit {
            addr: flags.get("addr").map(str::to_string),
            artifact: flags
                .get("artifact")
                .ok_or_else(|| CliError("submit requires --artifact table7|table10|smoke".into()))?
                .to_string(),
            scale: flags.scale()?,
            seed: flags.opt_num("seed")?,
            jobs: flags.opt_num("jobs")?.map(|n| n as usize),
            mp_jobs: flags.opt_num("mp-jobs")?.map(|n| n as usize),
            adaptive: flags.on_off("adaptive")?,
            wait: flags.switch("wait"),
            json: flags.get("json").map(str::to_string),
            timeout_secs: flags.num("timeout-secs", 600)?,
        }),
        "list" => Ok(Command::List),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError(format!("unknown subcommand `{other}` (try `help`)"))),
    }
}

fn find_workload(name: &str) -> Result<Workload, CliError> {
    mixes::all()
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| CliError(format!("unknown workload `{name}` (try `list`)")))
}

fn find_app(name: &str) -> Result<SplashProfile, CliError> {
    splash_suite()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| CliError(format!("unknown application `{name}` (try `list`)")))
}

/// Builds the experiment grid behind an artifact name. Delegates to
/// [`crate::bench::artifact_spec`], the single resolver shared with
/// the serve daemon, so `sweep`, `profile`, and a served job all run
/// identical cells.
fn artifact_spec(artifact: &str, scale: Scale) -> Result<crate::bench::ExperimentSpec, CliError> {
    crate::bench::artifact_spec(artifact, scale).map_err(CliError)
}

/// Resolves a daemon address: flag value, else `INTERLEAVE_ADDR`, else
/// the default port. Tolerates a pasted `http://` prefix.
fn service_addr(addr: Option<String>) -> String {
    let addr = addr
        .or_else(|| std::env::var("INTERLEAVE_ADDR").ok())
        .unwrap_or_else(|| "127.0.0.1:4994".into());
    addr.strip_prefix("http://").unwrap_or(&addr).trim_end_matches('/').to_string()
}

/// Renders a host-phase profile as a table sorted by self time, with
/// each phase's share of the sweep's wall clock.
fn phase_table(
    artifact: &str,
    profile: &crate::obs::profile::PhaseProfile,
    wall: std::time::Duration,
) -> Table {
    let wall_ns = (wall.as_nanos().max(1)) as f64;
    let mut phases: Vec<_> = profile.iter().collect();
    phases.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then_with(|| a.0.cmp(b.0)));
    let mut t = Table::new(format!("host phases — {artifact}"));
    t.headers(["phase", "calls", "total ms", "self ms", "% of wall"]);
    for (name, s) in phases {
        t.row([
            name.to_string(),
            s.calls.to_string(),
            format!("{:.2}", s.total_ns as f64 / 1e6),
            format!("{:.2}", s.self_ns as f64 / 1e6),
            format!("{:.1}%", s.self_ns as f64 / wall_ns * 100.0),
        ]);
    }
    t
}

/// Renders one `interleave-status-v1` snapshot as a progress line.
/// `None` when the document is not such a snapshot.
fn render_status(doc: &crate::obs::json::Value) -> Option<String> {
    if doc.get("schema")?.as_str()? != "interleave-status-v1" {
        return None;
    }
    let artifact = doc.get("artifact")?.as_str()?;
    let scale = doc.get("scale")?.as_str()?;
    let done = doc.get("done")?.as_u64()?;
    let total = doc.get("total")?.as_u64()?;
    let cells_per_sec = doc.get("cells_per_sec")?.as_f64()?;
    let sim_rate = doc.get("sim_cycles_per_sec")?.as_f64()?;
    if doc.get("finished")?.as_bool()? {
        let wall_ms = doc.get("wall_ms")?.as_u64()?;
        return Some(format!(
            "{artifact} [{scale}]: finished {done}/{total} cells in {:.2}s \
             ({cells_per_sec:.2} cells/s, {sim_rate:.2e} sim cycles/s)",
            wall_ms as f64 / 1e3
        ));
    }
    let eta = doc.get("eta_secs")?.as_f64()?;
    let last = doc.get("last_cell")?.as_str()?;
    let tail = if last.is_empty() { String::new() } else { format!(" — {last}") };
    Some(format!(
        "{artifact} [{scale}]: {done}/{total} cells, {cells_per_sec:.2} cells/s, \
         {sim_rate:.2e} sim cycles/s, ETA {eta:.0}s{tail}"
    ))
}

fn breakdown_report(title: &str, b: &crate::stats::Breakdown) -> Table {
    let mut t = Table::new(title.to_string());
    t.headers(["category", "cycles", "fraction"]);
    for c in Category::ALL {
        t.row([
            c.label().to_string(),
            b.get(c).to_string(),
            format!("{:.1}%", b.fraction(c) * 100.0),
        ]);
    }
    t
}

/// Executes a parsed command, printing reports to stdout.
///
/// # Errors
///
/// Returns [`CliError`] for unknown names or unreadable trace files.
pub fn run(command: Command) -> Result<(), CliError> {
    match command {
        Command::Help => print!("{USAGE}"),
        Command::List => {
            let mut t = Table::new("Table 5 workloads");
            t.headers(["name", "applications"]);
            for w in mixes::all() {
                let apps: Vec<&str> = w.apps.iter().map(|a| a.name).collect();
                t.row([w.name.to_string(), apps.join(" ")]);
            }
            println!("{t}");
            let mut t = Table::new("SPLASH applications");
            t.headers(["name", "sharing", "locks", "barriers"]);
            for a in splash_suite() {
                t.row([
                    a.name.to_string(),
                    format!("{:?}", a.pattern),
                    a.lock_period.map(|p| format!("every {p}")).unwrap_or_else(|| "-".into()),
                    a.barrier_period.map(|p| format!("every {p}")).unwrap_or_else(|| "-".into()),
                ]);
            }
            println!("{t}");
        }
        Command::Uni { workload, scheme, contexts, quota, seed } => {
            let workload = find_workload(&workload)?;
            let result = MultiprogramSim::builder(workload.clone())
                .scheme(scheme)
                .contexts(contexts)
                .quota(quota)
                .seed(seed)
                .build()
                .run();
            println!(
                "{} | {scheme:?} x{contexts} | {} cycles | IPC {:.3}\n",
                workload.name,
                result.cycles,
                result.throughput()
            );
            println!("{}", breakdown_report("execution-time breakdown", &result.breakdown));
            println!(
                "memory: {:.1}% L1D miss, {:.2}% L1I miss, {} DTLB misses, {:.0}% of misses hit L2",
                result.mem_stats.l1d_miss_rate() * 100.0,
                result.mem_stats.l1i_miss_rate() * 100.0,
                result.mem_stats.dtlb_misses,
                result.mem_stats.l2_hit_fraction() * 100.0,
            );
        }
        Command::Mp { app, scheme, nodes, contexts, work, seed } => {
            let app = find_app(&app)?;
            let result = MpSim::builder(app.clone())
                .scheme(scheme)
                .nodes(nodes)
                .contexts(contexts)
                .work(work)
                .seed(seed)
                .build()
                .run();
            println!(
                "{} | {scheme:?} | {nodes} nodes x {contexts} contexts = {} threads | {} cycles\n",
                app.name, result.threads, result.cycles
            );
            println!("{}", breakdown_report("all-processor breakdown", &result.breakdown));
            let d = result.directory;
            println!(
                "protocol: {} local, {} remote, {} remote-cache, {} upgrades, {} invalidations",
                d.local, d.remote, d.remote_cache, d.upgrades, d.invalidations
            );
        }
        Command::Sweep {
            artifact,
            jobs,
            scale,
            json,
            seed,
            mp_jobs,
            adaptive,
            shard,
            checkpoint_dir,
            progress,
        } => {
            let scale = scale.unwrap_or_else(Scale::from_env);
            let mut spec = artifact_spec(&artifact, scale)?;
            if let Some(seed) = seed {
                spec = spec.seeds([seed]);
            }
            if let Some(mp_jobs) = mp_jobs {
                spec = spec.mp_jobs(mp_jobs);
            }
            if let Some(adaptive) = adaptive {
                spec = spec.adaptive(adaptive);
            }
            // `from_env` first so `INTERLEAVE_PROGRESS` / `INTERLEAVE_STATUS`
            // (and the shard/checkpoint env knobs) apply even when flags
            // override them.
            let mut runner = Runner::from_env();
            if let Some(jobs) = jobs {
                runner = runner.with_jobs(jobs);
            }
            if let Some(shard) = shard {
                runner = runner.shard(shard);
            }
            if let Some(dir) = checkpoint_dir {
                runner = runner.checkpoint_dir(dir);
            }
            if progress {
                runner = runner.progress(true);
            }
            let sweep = runner.run(&spec);
            println!("{}", sweep.to_table());
            let shard_note = sweep
                .shard
                .map(|s| {
                    format!(" [shard {}/{} of {} cells]", s.index(), s.count(), sweep.grid_cells)
                })
                .unwrap_or_default();
            let resume_note = if sweep.resumed > 0 {
                format!(" ({} resumed from checkpoints)", sweep.resumed)
            } else {
                String::new()
            };
            println!(
                "{} cells{shard_note}{resume_note}, {} jobs, {:.2?} wall, {} scale",
                sweep.cells.len(),
                sweep.jobs,
                sweep.wall,
                sweep.scale.name()
            );
            match json {
                Some(dir) => {
                    let dir = std::path::Path::new(&dir);
                    for written in [sweep.write_json(dir), sweep.write_metrics_json(dir)] {
                        let path = written.map_err(|e| {
                            CliError(format!("cannot write JSON into `{}`: {e}", dir.display()))
                        })?;
                        println!("wrote {}", path.display());
                    }
                    // Present only when the sweep ran under the host
                    // profiler (INTERLEAVE_PROFILE=1 / --features profile).
                    match sweep.write_profile_json(dir) {
                        Ok(Some(path)) => println!("wrote {}", path.display()),
                        Ok(None) => {}
                        Err(e) => {
                            return Err(CliError(format!(
                                "cannot write JSON into `{}`: {e}",
                                dir.display()
                            )))
                        }
                    }
                }
                None => sweep.maybe_emit_json(),
            }
        }
        Command::Merge { out, dirs } => {
            let dirs: Vec<std::path::PathBuf> = dirs.iter().map(std::path::PathBuf::from).collect();
            let merged = merge::merge_dirs(&dirs).map_err(|e| CliError(e.to_string()))?;
            let out = std::path::Path::new(&out);
            for sweep in &merged {
                let (bench, metrics) = sweep.write(out).map_err(|e| {
                    CliError(format!("cannot write merged artifacts into `{}`: {e}", out.display()))
                })?;
                println!(
                    "merged {} ({} shards, {} cells): wrote {} and {}",
                    sweep.artifact,
                    sweep.shards,
                    sweep.grid_cells,
                    bench.display(),
                    metrics.display()
                );
            }
        }
        Command::Profile { artifact, jobs, scale, json, seed, trace_out } => {
            let scale = scale.unwrap_or_else(Scale::from_env);
            let mut spec = artifact_spec(&artifact, scale)?;
            if let Some(seed) = seed {
                spec = spec.seeds([seed]);
            }
            crate::obs::profile::set_enabled(true);
            if trace_out.is_some() {
                crate::obs::profile::record_spans(true);
            }
            let mut runner = Runner::from_env();
            if let Some(jobs) = jobs {
                runner = runner.with_jobs(jobs);
            }
            let sweep = runner.run(&spec);
            let profile = sweep
                .profile
                .clone()
                .filter(|p| !p.is_empty())
                .ok_or_else(|| CliError("profiler recorded no phases".into()))?;
            println!("{}", phase_table(&artifact, &profile, sweep.wall));
            let wall_ns = (sweep.wall.as_nanos().max(1)) as f64;
            println!(
                "{} cells, {} jobs, {:.2?} wall, {} scale; phase self-times cover {:.1}% \
                 of wall",
                sweep.cells.len(),
                sweep.jobs,
                sweep.wall,
                sweep.scale.name(),
                profile.total_self_ns() as f64 / wall_ns * 100.0
            );
            if let Some(dir) = json {
                let dir = std::path::Path::new(&dir);
                let written = [
                    sweep.write_json(dir),
                    sweep.write_metrics_json(dir),
                    sweep.write_profile_json(dir).map(|p| p.expect("sweep was profiled")),
                ];
                for path in written {
                    let path = path.map_err(|e| {
                        CliError(format!("cannot write JSON into `{}`: {e}", dir.display()))
                    })?;
                    println!("wrote {}", path.display());
                }
            }
            if let Some(out) = trace_out {
                let (spans, dropped) = crate::obs::profile::take_spans();
                if dropped > 0 {
                    eprintln!("warning: dropped {dropped} host spans (per-thread cap)");
                }
                let doc = crate::obs::profile::spans_to_chrome(&spans).to_json();
                let summary = crate::obs::chrome::validate(&doc)
                    .map_err(|e| CliError(format!("host trace failed validation: {e}")))?;
                std::fs::write(&out, &doc)
                    .map_err(|e| CliError(format!("cannot write `{out}`: {e}")))?;
                println!(
                    "wrote {out} ({} spans on {} tracks)",
                    summary.spans,
                    summary.spans_by_track.len()
                );
            }
        }
        Command::Serve { addr, queue_depth, workers, cache_dir, status_dir } => {
            let mut config = crate::server::ServerConfig::from_env();
            if let Some(addr) = addr {
                config.addr = addr;
            }
            if let Some(depth) = queue_depth {
                config.queue_depth = depth.max(1);
            }
            if let Some(workers) = workers {
                config.workers = workers;
            }
            if let Some(dir) = cache_dir {
                config.cache_dir = Some(dir.into());
            }
            if let Some(dir) = status_dir {
                config.status_dir = Some(dir.into());
            }
            let bind_addr = config.addr.clone();
            let cache_note = config
                .cache_dir
                .as_ref()
                .map(|d| format!(", cache {}", d.display()))
                .unwrap_or_default();
            let server = crate::server::Server::bind(config)
                .map_err(|e| CliError(format!("cannot bind `{bind_addr}`: {e}")))?;
            // Scripts grep this line to capture the resolved ephemeral
            // port, so flush it before blocking in the accept loop.
            println!("serve: listening on http://{}{cache_note}", server.local_addr());
            {
                use std::io::Write;
                std::io::stdout().flush().ok();
            }
            server.run().map_err(|e| CliError(format!("server error: {e}")))?;
            println!("serve: shut down cleanly");
        }
        Command::Submit {
            addr,
            artifact,
            scale,
            seed,
            jobs,
            mp_jobs,
            adaptive,
            wait,
            json,
            timeout_secs,
        } => {
            let addr = service_addr(addr);
            let request = crate::server::job::JobRequest {
                artifact: artifact.clone(),
                scale,
                seed,
                jobs,
                mp_jobs,
                adaptive,
            };
            let started = std::time::Instant::now();
            let response = crate::server::client::post(&addr, "/jobs", &request.to_json())
                .map_err(|e| CliError(format!("cannot reach daemon at `{addr}`: {e}")))?;
            if response.status != 202 {
                return Err(CliError(format!(
                    "submit rejected (HTTP {}): {}",
                    response.status,
                    response.body.trim_end()
                )));
            }
            let doc = crate::obs::json::parse(&response.body)
                .map_err(|e| CliError(format!("daemon sent invalid JSON: {e}")))?;
            let id = doc
                .get("id")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| CliError("daemon response has no job id".into()))?;
            let cells = doc.get("cells").and_then(|v| v.as_u64()).unwrap_or(0);
            println!("job {id}: {artifact} ({cells} cells) queued on http://{addr}");
            if !wait && json.is_none() {
                println!("poll with `interleave-sim poll {id} --addr {addr}`");
                return Ok(());
            }
            let deadline = started + std::time::Duration::from_secs(timeout_secs);
            let status = loop {
                let response = crate::server::client::get(&addr, &format!("/jobs/{id}"))
                    .map_err(|e| CliError(format!("cannot poll job {id}: {e}")))?;
                let doc = crate::obs::json::parse(&response.body)
                    .map_err(|e| CliError(format!("daemon sent invalid JSON: {e}")))?;
                match doc.get("state").and_then(|v| v.as_str()) {
                    Some("done") => break doc,
                    Some("failed") => {
                        let why = doc
                            .get("error")
                            .and_then(|v| v.as_str())
                            .unwrap_or("unknown error")
                            .to_string();
                        return Err(CliError(format!("job {id} failed: {why}")));
                    }
                    _ => {}
                }
                if std::time::Instant::now() >= deadline {
                    return Err(CliError(format!(
                        "timed out after {timeout_secs}s waiting on job {id}"
                    )));
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            };
            let roundtrip_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            let cached = status.get("cached_cells").and_then(|v| v.as_u64()).unwrap_or(0);
            let total = status.get("cells").and_then(|v| v.as_u64()).unwrap_or(cells);
            println!("job {id} done in {roundtrip_ms} ms: {total} cells, {cached} from cache");
            if let Some(dir) = json {
                let dir = std::path::Path::new(&dir);
                std::fs::create_dir_all(dir)
                    .map_err(|e| CliError(format!("cannot create `{}`: {e}", dir.display())))?;
                for (route, prefix) in [("bench", "BENCH"), ("metrics", "METRICS")] {
                    let response =
                        crate::server::client::get(&addr, &format!("/jobs/{id}/{route}"))
                            .map_err(|e| CliError(format!("cannot fetch job {id} {route}: {e}")))?;
                    if response.status != 200 {
                        return Err(CliError(format!(
                            "fetching job {id} {route} failed (HTTP {}): {}",
                            response.status,
                            response.body.trim_end()
                        )));
                    }
                    let path = dir.join(format!("{prefix}_{artifact}.json"));
                    std::fs::write(&path, &response.body)
                        .map_err(|e| CliError(format!("cannot write `{}`: {e}", path.display())))?;
                    println!("wrote {}", path.display());
                }
                let mut fields = vec![
                    "\"schema\": \"interleave-serve-v1\"".to_string(),
                    format!("\"artifact\": {}", crate::obs::json::escape(&artifact)),
                    format!("\"job\": {id}"),
                    format!("\"cells\": {total}"),
                    format!("\"cached_cells\": {cached}"),
                    format!("\"serve_roundtrip_ms\": {roundtrip_ms}"),
                ];
                // Present only when every cell came out of the result
                // cache, so a gate keyed on it fails loudly (missing
                // key) if the cache missed.
                if total > 0 && cached == total {
                    fields.push(format!("\"serve_cached_roundtrip_ms\": {roundtrip_ms}"));
                }
                let path = dir.join(format!("SERVE_{artifact}.json"));
                std::fs::write(&path, format!("{{{}}}\n", fields.join(", ")))
                    .map_err(|e| CliError(format!("cannot write `{}`: {e}", path.display())))?;
                println!("wrote {}", path.display());
            }
        }
        Command::Poll { addr, id, stats } => {
            let addr = service_addr(addr);
            let path = if stats {
                "/stats".to_string()
            } else {
                match id {
                    Some(id) => format!("/jobs/{id}"),
                    None => "/healthz".to_string(),
                }
            };
            let response = crate::server::client::get(&addr, &path)
                .map_err(|e| CliError(format!("cannot reach daemon at `{addr}`: {e}")))?;
            if response.status != 200 {
                return Err(CliError(format!(
                    "poll {path} failed (HTTP {}): {}",
                    response.status,
                    response.body.trim_end()
                )));
            }
            print!("{}", response.body);
        }
        Command::Watch { file, once, interval_ms, timeout_secs } => {
            // A daemon events URL streams NDJSON frames instead of
            // polling a file; the server closes the stream at the
            // `finished` snapshot.
            if let Some((authority, path)) = crate::server::client::split_url(&file) {
                let mut bad_frame: Option<String> = None;
                let mut last_line = String::new();
                crate::server::client::stream_lines(authority, path, |frame| {
                    let doc = crate::obs::json::parse(frame).ok();
                    match doc.as_ref().and_then(render_status) {
                        Some(line) => {
                            if line != last_line {
                                println!("{line}");
                                last_line = line;
                            }
                            !once
                        }
                        None => {
                            bad_frame = Some(frame.to_string());
                            false
                        }
                    }
                })
                .map_err(|e| CliError(format!("cannot stream `{file}`: {e}")))?;
                if let Some(frame) = bad_frame {
                    return Err(CliError(format!(
                        "`{file}` sent a non-interleave-status-v1 frame: {frame}"
                    )));
                }
                return Ok(());
            }
            let deadline =
                timeout_secs.map(|s| std::time::Instant::now() + std::time::Duration::from_secs(s));
            let interval = std::time::Duration::from_millis(interval_ms.max(1));
            let mut last_line = String::new();
            loop {
                match std::fs::read_to_string(&file) {
                    Ok(text) => {
                        // The writer replaces the file atomically, so a
                        // successful read is always a complete document.
                        let doc = crate::obs::json::parse(&text)
                            .map_err(|e| CliError(format!("`{file}` is not valid JSON: {e}")))?;
                        let line = render_status(&doc).ok_or_else(|| {
                            CliError(format!("`{file}` is not an interleave-status-v1 document"))
                        })?;
                        if line != last_line {
                            println!("{line}");
                            last_line = line;
                        }
                        let finished =
                            doc.get("finished").and_then(|v| v.as_bool()).unwrap_or(false);
                        if finished || once {
                            break;
                        }
                    }
                    // Not created yet: keep waiting for the sweep to
                    // publish its first snapshot.
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound && !once => {}
                    Err(e) => return Err(CliError(format!("cannot read `{file}`: {e}"))),
                }
                if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                    return Err(CliError(format!("timed out waiting on `{file}`")));
                }
                std::thread::sleep(interval);
            }
        }
        Command::Trace { file, workload, scheme, contexts, max_cycles, seed, out } => {
            let mut cpu = crate::core::Processor::new(
                crate::core::ProcConfig::new(scheme, contexts),
                crate::mem::UniMemSystem::new(crate::mem::MemConfig::workstation()),
            );
            let label = match &file {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
                    let source = crate::workloads::trace::TraceSource::from_text(&text, 0x1000)
                        .map_err(|e| CliError(e.to_string()))?;
                    cpu.attach(0, Box::new(source));
                    path.clone()
                }
                None => {
                    let workload = find_workload(&workload)?;
                    for ctx in 0..contexts {
                        let profile = workload.apps[ctx % workload.apps.len()];
                        cpu.attach(ctx, Box::new(SyntheticApp::new(profile, ctx, seed)));
                    }
                    format!("{} (synthetic)", workload.name)
                }
            };
            cpu.set_trace(true);
            let cycles = cpu.run_until_done(max_cycles);
            let retired: u64 = (0..contexts).map(|c| cpu.retired(c)).sum();
            println!(
                "{label} | {scheme:?} x{contexts} | {retired} instructions in {cycles} cycles \
                 (IPC {:.3})\n",
                retired as f64 / cycles.max(1) as f64
            );
            println!("{}", breakdown_report("execution-time breakdown", cpu.breakdown()));
            let doc = cpu.chrome_trace().to_json();
            let summary = crate::obs::chrome::validate(&doc)
                .map_err(|e| CliError(format!("generated trace failed validation: {e}")))?;
            println!(
                "trace: {} events, {} spans on {} tracks",
                summary.events,
                summary.spans,
                summary.spans_by_track.len()
            );
            if let Some(out) = out {
                std::fs::write(&out, &doc)
                    .map_err(|e| CliError(format!("cannot write `{out}`: {e}")))?;
                println!("wrote {out}");
            }
        }
        Command::Metrics { workload, scheme, contexts, quota, seed, json } => {
            let workload = find_workload(&workload)?;
            let result = MultiprogramSim::builder(workload.clone())
                .scheme(scheme)
                .contexts(contexts)
                .quota(quota)
                .seed(seed)
                .build()
                .run();
            println!(
                "{} | {scheme:?} x{contexts} | {} cycles | IPC {:.3}\n",
                workload.name,
                result.cycles,
                result.throughput()
            );
            let mut t = Table::new("metric registry");
            t.headers(["name", "value", "count", "mean", "min..max"]);
            for (name, metric) in result.metrics.iter() {
                match metric {
                    Metric::Counter(v) => {
                        t.row([
                            name.to_string(),
                            v.to_string(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                        ]);
                    }
                    Metric::Histogram(h) => {
                        t.row([
                            name.to_string(),
                            "-".into(),
                            h.count().to_string(),
                            format!("{:.1}", h.mean()),
                            format!("{}..{}", h.min(), h.max()),
                        ]);
                    }
                }
            }
            println!("{t}");
            if let Some(path) = json {
                std::fs::write(&path, result.metrics.to_json(0))
                    .map_err(|e| CliError(format!("cannot write `{path}`: {e}")))?;
                println!("wrote {path}");
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_uni_defaults() {
        let cmd = parse(&argv("uni")).unwrap();
        assert_eq!(
            cmd,
            Command::Uni {
                workload: "FP".into(),
                scheme: Scheme::Interleaved,
                contexts: 4,
                quota: 40_000,
                seed: 0x19940501,
            }
        );
    }

    #[test]
    fn parses_uni_flags() {
        let cmd =
            parse(&argv("uni --workload DC --scheme blocked --contexts 2 --quota 999")).unwrap();
        match cmd {
            Command::Uni { workload, scheme, contexts, quota, .. } => {
                assert_eq!(workload, "DC");
                assert_eq!(scheme, Scheme::Blocked);
                assert_eq!(contexts, 2);
                assert_eq!(quota, 999);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_mp_and_trace() {
        assert!(matches!(parse(&argv("mp --app MP3D --nodes 4")).unwrap(), Command::Mp { .. }));
        match parse(&argv("trace --file t.txt --scheme hep")).unwrap() {
            Command::Trace { file, scheme, .. } => {
                assert_eq!(file.as_deref(), Some("t.txt"));
                assert_eq!(scheme, Scheme::FineGrained);
            }
            other => panic!("{other:?}"),
        }
        // No --file: synthetic-workload mode with defaults.
        match parse(&argv("trace --max-cycles 5000 --out t.json")).unwrap() {
            Command::Trace { file, workload, max_cycles, out, .. } => {
                assert_eq!(file, None);
                assert_eq!(workload, "FP");
                assert_eq!(max_cycles, 5000);
                assert_eq!(out.as_deref(), Some("t.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_metrics() {
        match parse(&argv("metrics --workload DC --quota 500 --json m.json")).unwrap() {
            Command::Metrics { workload, quota, json, .. } => {
                assert_eq!(workload, "DC");
                assert_eq!(quota, 500);
                assert_eq!(json.as_deref(), Some("m.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("uni --scheme warp")).is_err());
        assert!(parse(&argv("uni --contexts")).is_err());
        assert!(parse(&argv("uni contexts 4")).is_err());
        assert!(parse(&argv("trace --file")).is_err());
        assert!(parse(&argv("uni --quota abc")).is_err());
        assert!(parse(&argv("sweep")).is_err());
        assert!(parse(&argv("sweep --artifact table7 --scale huge")).is_err());
        assert!(parse(&argv("sweep --artifact table7 --jobs x")).is_err());
        assert!(parse(&argv("sweep --artifact table10 --mp-jobs x")).is_err());
        assert!(parse(&argv("sweep --artifact table10 --adaptive maybe")).is_err());
    }

    #[test]
    fn parses_sweep() {
        let cmd = parse(&argv(
            "sweep --artifact table7 --jobs 4 --scale ci --json out --seed 9 --mp-jobs 2 \
             --adaptive off --progress",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                artifact: "table7".into(),
                jobs: Some(4),
                scale: Some(Scale::Ci),
                json: Some("out".into()),
                seed: Some(9),
                mp_jobs: Some(2),
                adaptive: Some(false),
                shard: None,
                checkpoint_dir: None,
                progress: true,
            }
        );
        match parse(&argv("sweep --artifact table10 --adaptive on")).unwrap() {
            Command::Sweep {
                artifact,
                jobs,
                scale,
                json,
                seed,
                mp_jobs,
                adaptive,
                shard,
                checkpoint_dir,
                progress,
            } => {
                assert_eq!(artifact, "table10");
                assert_eq!(jobs, None);
                assert_eq!(scale, None);
                assert_eq!(json, None);
                assert_eq!(seed, None);
                assert_eq!(mp_jobs, None);
                assert_eq!(adaptive, Some(true));
                assert_eq!(shard, None);
                assert_eq!(checkpoint_dir, None);
                assert!(!progress);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_sweep_shard_and_checkpoint() {
        match parse(&argv("sweep --artifact table7 --shard 2/4 --checkpoint-dir ckpt")).unwrap() {
            Command::Sweep { shard, checkpoint_dir, .. } => {
                assert_eq!(shard, Some(Shard::new(2, 4)));
                assert_eq!(checkpoint_dir.as_deref(), Some("ckpt"));
            }
            other => panic!("{other:?}"),
        }
        for bad in ["0/4", "5/4", "2-4", "x/y", "4"] {
            assert!(
                parse(&argv(&format!("sweep --artifact table7 --shard {bad}"))).is_err(),
                "--shard {bad} should be rejected"
            );
        }
    }

    #[test]
    fn parses_merge() {
        assert_eq!(
            parse(&argv("merge --out merged shards/a shards/b")).unwrap(),
            Command::Merge {
                out: "merged".into(),
                dirs: vec!["shards/a".into(), "shards/b".into()]
            }
        );
        // Flag order is free; dirs stay positional.
        assert_eq!(
            parse(&argv("merge shards --out merged")).unwrap(),
            Command::Merge { out: "merged".into(), dirs: vec!["shards".into()] }
        );
        assert!(parse(&argv("merge --out merged")).is_err(), "needs at least one dir");
        assert!(parse(&argv("merge shards")).is_err(), "needs --out");
        assert!(parse(&argv("merge --out")).is_err(), "--out needs a value");
        assert!(parse(&argv("merge --frob x shards --out o")).is_err(), "unknown flag");
    }

    #[test]
    fn merge_of_missing_dir_errors() {
        let err = run(Command::Merge {
            out: "/tmp/ilv_merge_out_missing".into(),
            dirs: vec!["/nonexistent/ilv_shards".into()],
        })
        .unwrap_err();
        assert!(err.0.contains("merge error"), "{err}");
    }

    #[test]
    fn parses_profile() {
        let cmd = parse(&argv(
            "profile --artifact smoke --jobs 2 --scale ci --json out --seed 7 --trace-out h.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Profile {
                artifact: "smoke".into(),
                jobs: Some(2),
                scale: Some(Scale::Ci),
                json: Some("out".into()),
                seed: Some(7),
                trace_out: Some("h.json".into()),
            }
        );
        assert!(parse(&argv("profile")).is_err());
        assert!(parse(&argv("profile --artifact smoke --scale huge")).is_err());
    }

    #[test]
    fn parses_watch() {
        let cmd =
            parse(&argv("watch STATUS_t.json --once --interval-ms 50 --timeout-secs 2")).unwrap();
        assert_eq!(
            cmd,
            Command::Watch {
                file: "STATUS_t.json".into(),
                once: true,
                interval_ms: 50,
                timeout_secs: Some(2),
            }
        );
        assert_eq!(
            parse(&argv("watch s.json")).unwrap(),
            Command::Watch {
                file: "s.json".into(),
                once: false,
                interval_ms: 250,
                timeout_secs: None,
            }
        );
        // The status file is positional and required.
        assert!(parse(&argv("watch")).is_err());
        assert!(parse(&argv("watch --once")).is_err());
    }

    #[test]
    fn parses_serve_submit_and_poll() {
        assert_eq!(
            parse(&argv(
                "serve --addr 127.0.0.1:0 --queue-depth 8 --workers 2 --cache-dir c \
                 --status-dir s"
            ))
            .unwrap(),
            Command::Serve {
                addr: Some("127.0.0.1:0".into()),
                queue_depth: Some(8),
                workers: Some(2),
                cache_dir: Some("c".into()),
                status_dir: Some("s".into()),
            }
        );
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve {
                addr: None,
                queue_depth: None,
                workers: None,
                cache_dir: None,
                status_dir: None,
            }
        );
        assert_eq!(
            parse(&argv(
                "submit --artifact smoke --addr 127.0.0.1:4994 --seed 7 --wait --json out \
                 --timeout-secs 30"
            ))
            .unwrap(),
            Command::Submit {
                addr: Some("127.0.0.1:4994".into()),
                artifact: "smoke".into(),
                scale: None,
                seed: Some(7),
                jobs: None,
                mp_jobs: None,
                adaptive: None,
                wait: true,
                json: Some("out".into()),
                timeout_secs: 30,
            }
        );
        assert!(parse(&argv("submit")).is_err(), "submit needs --artifact");
        assert!(parse(&argv("submit --artifact smoke --adaptive maybe")).is_err());
        assert_eq!(
            parse(&argv("poll 3 --addr a:1")).unwrap(),
            Command::Poll { addr: Some("a:1".into()), id: Some(3), stats: false }
        );
        assert_eq!(
            parse(&argv("poll --stats")).unwrap(),
            Command::Poll { addr: None, id: None, stats: true }
        );
        assert!(parse(&argv("poll nope")).is_err(), "job ids are numeric");
    }

    #[test]
    fn service_addr_strips_http_prefix() {
        assert_eq!(service_addr(Some("http://127.0.0.1:9/".into())), "127.0.0.1:9");
        assert_eq!(service_addr(Some("host:1".into())), "host:1");
    }

    #[test]
    fn submit_wait_fetches_artifacts_and_watch_streams() {
        let dir = std::env::temp_dir().join(format!("ilv_cli_serve_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let server = crate::server::Server::bind(crate::server::ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_depth: 4,
            workers: 1,
            cache_dir: Some(dir.join("cache")),
            status_dir: None,
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run());
        let submit = |addr: String, out: &std::path::Path| {
            run(Command::Submit {
                addr: Some(addr),
                artifact: "smoke".into(),
                scale: Some(Scale::Ci),
                seed: Some(11),
                jobs: Some(1),
                mp_jobs: None,
                adaptive: None,
                wait: true,
                json: Some(out.to_string_lossy().into_owned()),
                timeout_secs: 120,
            })
        };
        let out = dir.join("out");
        // `http://` prefixes are tolerated on --addr.
        submit(format!("http://{addr}"), &out).unwrap();
        for name in ["BENCH_smoke.json", "METRICS_smoke.json", "SERVE_smoke.json"] {
            assert!(out.join(name).is_file(), "{name} missing");
        }
        let serve_doc = std::fs::read_to_string(out.join("SERVE_smoke.json")).unwrap();
        assert!(serve_doc.contains("\"serve_roundtrip_ms\""), "{serve_doc}");
        // Nothing was cached on the first submit, so the cached-path
        // key must be absent.
        assert!(!serve_doc.contains("serve_cached_roundtrip_ms"), "{serve_doc}");
        // A resubmit of the same spec is served fully from the cache.
        let out2 = dir.join("out2");
        submit(addr.clone(), &out2).unwrap();
        let serve_doc = std::fs::read_to_string(out2.join("SERVE_smoke.json")).unwrap();
        assert!(serve_doc.contains("\"serve_cached_roundtrip_ms\""), "{serve_doc}");
        // The deterministic METRICS document is byte-identical across
        // the fresh and the cached round-trip.
        assert_eq!(
            std::fs::read(out.join("METRICS_smoke.json")).unwrap(),
            std::fs::read(out2.join("METRICS_smoke.json")).unwrap()
        );
        // `watch` accepts the events URL and renders to completion.
        run(Command::Watch {
            file: format!("http://{addr}/jobs/2/events"),
            once: false,
            interval_ms: 10,
            timeout_secs: None,
        })
        .unwrap();
        // `poll` answers for a job, the stats page, and health.
        run(Command::Poll { addr: Some(addr.clone()), id: Some(1), stats: false }).unwrap();
        run(Command::Poll { addr: Some(addr.clone()), id: None, stats: true }).unwrap();
        run(Command::Poll { addr: Some(addr.clone()), id: None, stats: false }).unwrap();
        assert!(
            run(Command::Poll { addr: Some(addr.clone()), id: Some(99), stats: false }).is_err()
        );
        let _ = crate::server::client::post(&addr, "/shutdown", "");
        handle.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn render_status_covers_running_and_finished() {
        let running = crate::obs::json::parse(
            r#"{"artifact": "smoke", "schema": "interleave-status-v1", "scale": "ci",
                "done": 1, "total": 4, "finished": false, "wall_ms": 500,
                "cells_per_sec": 2.0, "eta_secs": 1.5, "sim_cycles": 9,
                "sim_cycles_per_sec": 18.0, "last_cell": "FP Interleaved x2",
                "metrics": {}}"#,
        )
        .unwrap();
        let line = render_status(&running).unwrap();
        assert!(line.contains("smoke [ci]: 1/4 cells"), "{line}");
        assert!(line.contains("ETA 2s") || line.contains("ETA 1.5"), "{line}");
        assert!(line.contains("FP Interleaved x2"), "{line}");

        let finished = crate::obs::json::parse(
            r#"{"artifact": "smoke", "schema": "interleave-status-v1", "scale": "ci",
                "done": 4, "total": 4, "finished": true, "wall_ms": 2000,
                "cells_per_sec": 2.0, "eta_secs": 0.0, "sim_cycles": 9,
                "sim_cycles_per_sec": 18.0, "last_cell": "FP Interleaved x2",
                "metrics": {}}"#,
        )
        .unwrap();
        let line = render_status(&finished).unwrap();
        assert!(line.contains("finished 4/4 cells in 2.00s"), "{line}");

        let wrong = crate::obs::json::parse(r#"{"schema": "other"}"#).unwrap();
        assert!(render_status(&wrong).is_none());
    }

    #[test]
    fn watch_once_renders_a_status_file() {
        let path = std::env::temp_dir().join(format!("ilv_watch_{}.json", std::process::id()));
        std::fs::write(
            &path,
            "{\"artifact\": \"smoke\", \"schema\": \"interleave-status-v1\", \
             \"scale\": \"ci\", \"done\": 0, \"total\": 1, \"finished\": false, \
             \"wall_ms\": 0, \"cells_per_sec\": 0.0, \"eta_secs\": 0.0, \
             \"sim_cycles\": 0, \"sim_cycles_per_sec\": 0.0, \"last_cell\": \"\", \
             \"metrics\": {}}",
        )
        .unwrap();
        run(Command::Watch {
            file: path.to_string_lossy().into_owned(),
            once: true,
            interval_ms: 10,
            timeout_secs: Some(5),
        })
        .unwrap();
        std::fs::remove_file(&path).ok();
        // A missing file with `--once` is an error, not a wait.
        let err = run(Command::Watch {
            file: "/nonexistent/ilv_watch_missing.json".into(),
            once: true,
            interval_ms: 10,
            timeout_secs: Some(1),
        })
        .unwrap_err();
        assert!(err.0.contains("cannot read"), "{err}");
    }

    #[test]
    fn profile_smoke_emits_phase_artifacts() {
        let dir = std::env::temp_dir().join(format!("ilv_profile_{}", std::process::id()));
        let trace = dir.join("host_trace.json");
        std::fs::create_dir_all(&dir).unwrap();
        run(Command::Profile {
            artifact: "smoke".into(),
            jobs: Some(1),
            scale: Some(Scale::Ci),
            json: Some(dir.to_string_lossy().into_owned()),
            seed: None,
            trace_out: Some(trace.to_string_lossy().into_owned()),
        })
        .unwrap();
        // The acceptance bar: the phase self-times in the emitted
        // PROFILE document cover at least 90% of the measured wall.
        let doc = std::fs::read_to_string(dir.join("PROFILE_smoke.json")).unwrap();
        let doc = crate::obs::json::parse(&doc).unwrap();
        let wall_ns = doc.get("wall_ns").unwrap().as_u64().unwrap();
        let phases =
            crate::obs::profile::PhaseProfile::from_value(doc.get("phases").unwrap()).unwrap();
        assert!(phases.get("runner.cell").is_some());
        assert!(
            phases.total_self_ns() as f64 >= wall_ns as f64 * 0.9,
            "self {} vs wall {wall_ns}",
            phases.total_self_ns()
        );
        // The host-span trace is a structurally valid Chrome trace.
        let trace_doc = std::fs::read_to_string(&trace).unwrap();
        crate::obs::chrome::validate(&trace_doc).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_rejects_unknown_artifact() {
        let err = run(Command::Sweep {
            artifact: "table99".into(),
            jobs: Some(1),
            scale: Some(Scale::Ci),
            json: None,
            seed: None,
            mp_jobs: None,
            adaptive: None,
            shard: None,
            checkpoint_dir: None,
            progress: false,
        })
        .unwrap_err();
        assert!(err.0.contains("unknown artifact"));
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
    }

    #[test]
    fn list_runs() {
        run(Command::List).unwrap();
    }

    #[test]
    fn unknown_names_error() {
        let err = run(Command::Uni {
            workload: "nope".into(),
            scheme: Scheme::Single,
            contexts: 1,
            quota: 10,
            seed: 1,
        })
        .unwrap_err();
        assert!(err.0.contains("unknown workload"));
    }
}
