//! Argument parsing and report rendering for the `interleave-sim` binary.
//!
//! Hand-rolled (no external dependencies): subcommands `uni`, `mp`,
//! `sweep`, `trace`, and `list`, each with `--flag value` options.

use crate::bench::{ExperimentSpec, Runner, Scale};
use crate::core::Scheme;
use crate::mp::{splash_suite, MpSim, SplashProfile};
use crate::stats::{Category, Table};
use crate::workloads::mixes::{self, Workload};
use crate::workloads::MultiprogramSim;

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a workstation multiprogramming simulation.
    Uni {
        /// Table 5 workload.
        workload: String,
        /// Scheduling scheme.
        scheme: Scheme,
        /// Hardware contexts.
        contexts: usize,
        /// Instructions per application.
        quota: u64,
        /// Stream seed.
        seed: u64,
    },
    /// Run a multiprocessor simulation.
    Mp {
        /// SPLASH application name.
        app: String,
        /// Scheduling scheme.
        scheme: Scheme,
        /// Nodes in the machine.
        nodes: usize,
        /// Contexts per node.
        contexts: usize,
        /// Total instructions of work.
        work: u64,
        /// Stream seed.
        seed: u64,
    },
    /// Run a whole experiment grid on the parallel sweep runner.
    Sweep {
        /// Grid to run: `table7` (workstation) or `table10`
        /// (multiprocessor).
        artifact: String,
        /// Worker threads (`None` = `INTERLEAVE_JOBS` / machine).
        jobs: Option<usize>,
        /// Problem scale (`None` = `INTERLEAVE_FULL`).
        scale: Option<Scale>,
        /// Directory for the `BENCH_<artifact>.json` artifact.
        json: Option<String>,
        /// Explicit stream seed (`None` = the sims' defaults).
        seed: Option<u64>,
    },
    /// Replay a trace file on a single-context processor.
    Trace {
        /// Path to the trace file.
        path: String,
        /// Scheduling scheme.
        scheme: Scheme,
        /// Hardware contexts (the trace runs on context 0).
        contexts: usize,
    },
    /// List available workloads and applications.
    List,
    /// Show usage.
    Help,
}

/// Error produced for invalid command lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn parse_scheme(value: &str) -> Result<Scheme, CliError> {
    match value.to_ascii_lowercase().as_str() {
        "single" => Ok(Scheme::Single),
        "blocked" => Ok(Scheme::Blocked),
        "interleaved" => Ok(Scheme::Interleaved),
        "fine-grained" | "finegrained" | "hep" => Ok(Scheme::FineGrained),
        other => Err(CliError(format!(
            "unknown scheme `{other}` (expected single, blocked, interleaved, fine-grained)"
        ))),
    }
}

struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String]) -> Result<Flags<'a>, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(CliError(format!("expected a --flag, got `{flag}`")));
            };
            let Some(value) = it.next() else {
                return Err(CliError(format!("--{name} needs a value")));
            };
            pairs.push((name, value.as_str()));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    fn num(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| CliError(format!("--{name} expects a number, got `{v}`")))
            }
        }
    }

    fn opt_num(&self, name: &str) -> Result<Option<u64>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError(format!("--{name} expects a number, got `{v}`"))),
        }
    }

    fn scheme(&self, default: Scheme) -> Result<Scheme, CliError> {
        match self.get("scheme") {
            None => Ok(default),
            Some(v) => parse_scheme(v),
        }
    }

    fn scale(&self) -> Result<Option<Scale>, CliError> {
        match self.get("scale") {
            None => Ok(None),
            Some(v) => Scale::parse(v)
                .map(Some)
                .ok_or_else(|| CliError(format!("--scale expects `ci` or `full`, got `{v}`"))),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
interleave-sim — cycle-level multiple-context processor simulator

USAGE:
  interleave-sim uni   [--workload IC|DC|DT|FP|R0|R1|SP] [--scheme S] [--contexts N]
                       [--quota N] [--seed N]
  interleave-sim mp    [--app NAME] [--scheme S] [--nodes N] [--contexts N]
                       [--work N] [--seed N]
  interleave-sim sweep --artifact table7|table10 [--jobs N] [--scale ci|full]
                       [--json DIR] [--seed N]
  interleave-sim trace --file PATH [--scheme S] [--contexts N]
  interleave-sim list
  interleave-sim help

SCHEMES: single, blocked, interleaved, fine-grained
";

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] on unknown subcommands, flags, or values.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    let flags = Flags::parse(&args[1..])?;
    match sub.as_str() {
        "uni" => Ok(Command::Uni {
            workload: flags.get("workload").unwrap_or("FP").to_string(),
            scheme: flags.scheme(Scheme::Interleaved)?,
            contexts: flags.num("contexts", 4)? as usize,
            quota: flags.num("quota", 40_000)?,
            seed: flags.num("seed", 0x19940501)?,
        }),
        "mp" => Ok(Command::Mp {
            app: flags.get("app").unwrap_or("Water").to_string(),
            scheme: flags.scheme(Scheme::Interleaved)?,
            nodes: flags.num("nodes", 8)? as usize,
            contexts: flags.num("contexts", 4)? as usize,
            work: flags.num("work", 400_000)?,
            seed: flags.num("seed", 0x19941004)?,
        }),
        "sweep" => Ok(Command::Sweep {
            artifact: flags
                .get("artifact")
                .ok_or_else(|| CliError("sweep requires --artifact table7|table10".into()))?
                .to_string(),
            jobs: flags.opt_num("jobs")?.map(|n| n as usize),
            scale: flags.scale()?,
            json: flags.get("json").map(str::to_string),
            seed: flags.opt_num("seed")?,
        }),
        "trace" => Ok(Command::Trace {
            path: flags
                .get("file")
                .ok_or_else(|| CliError("trace requires --file PATH".into()))?
                .to_string(),
            scheme: flags.scheme(Scheme::Single)?,
            contexts: flags.num("contexts", 1)? as usize,
        }),
        "list" => Ok(Command::List),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError(format!("unknown subcommand `{other}` (try `help`)"))),
    }
}

fn find_workload(name: &str) -> Result<Workload, CliError> {
    mixes::all()
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| CliError(format!("unknown workload `{name}` (try `list`)")))
}

fn find_app(name: &str) -> Result<SplashProfile, CliError> {
    splash_suite()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| CliError(format!("unknown application `{name}` (try `list`)")))
}

fn breakdown_report(title: &str, b: &crate::stats::Breakdown) -> Table {
    let mut t = Table::new(title.to_string());
    t.headers(["category", "cycles", "fraction"]);
    for c in Category::ALL {
        t.row([
            c.label().to_string(),
            b.get(c).to_string(),
            format!("{:.1}%", b.fraction(c) * 100.0),
        ]);
    }
    t
}

/// Executes a parsed command, printing reports to stdout.
///
/// # Errors
///
/// Returns [`CliError`] for unknown names or unreadable trace files.
pub fn run(command: Command) -> Result<(), CliError> {
    match command {
        Command::Help => print!("{USAGE}"),
        Command::List => {
            let mut t = Table::new("Table 5 workloads");
            t.headers(["name", "applications"]);
            for w in mixes::all() {
                let apps: Vec<&str> = w.apps.iter().map(|a| a.name).collect();
                t.row([w.name.to_string(), apps.join(" ")]);
            }
            println!("{t}");
            let mut t = Table::new("SPLASH applications");
            t.headers(["name", "sharing", "locks", "barriers"]);
            for a in splash_suite() {
                t.row([
                    a.name.to_string(),
                    format!("{:?}", a.pattern),
                    a.lock_period.map(|p| format!("every {p}")).unwrap_or_else(|| "-".into()),
                    a.barrier_period.map(|p| format!("every {p}")).unwrap_or_else(|| "-".into()),
                ]);
            }
            println!("{t}");
        }
        Command::Uni { workload, scheme, contexts, quota, seed } => {
            let workload = find_workload(&workload)?;
            let result = MultiprogramSim::builder(workload.clone())
                .scheme(scheme)
                .contexts(contexts)
                .quota(quota)
                .seed(seed)
                .build()
                .run();
            println!(
                "{} | {scheme:?} x{contexts} | {} cycles | IPC {:.3}\n",
                workload.name,
                result.cycles,
                result.throughput()
            );
            println!("{}", breakdown_report("execution-time breakdown", &result.breakdown));
            println!(
                "memory: {:.1}% L1D miss, {:.2}% L1I miss, {} DTLB misses, {:.0}% of misses hit L2",
                result.mem_stats.l1d_miss_rate() * 100.0,
                result.mem_stats.l1i_miss_rate() * 100.0,
                result.mem_stats.dtlb_misses,
                result.mem_stats.l2_hit_fraction() * 100.0,
            );
        }
        Command::Mp { app, scheme, nodes, contexts, work, seed } => {
            let app = find_app(&app)?;
            let result = MpSim::builder(app.clone())
                .scheme(scheme)
                .nodes(nodes)
                .contexts(contexts)
                .work(work)
                .seed(seed)
                .build()
                .run();
            println!(
                "{} | {scheme:?} | {nodes} nodes x {contexts} contexts = {} threads | {} cycles\n",
                app.name, result.threads, result.cycles
            );
            println!("{}", breakdown_report("all-processor breakdown", &result.breakdown));
            let d = result.directory;
            println!(
                "protocol: {} local, {} remote, {} remote-cache, {} upgrades, {} invalidations",
                d.local, d.remote, d.remote_cache, d.upgrades, d.invalidations
            );
        }
        Command::Sweep { artifact, jobs, scale, json, seed } => {
            let scale = scale.unwrap_or_else(Scale::from_env);
            let mut spec = match artifact.as_str() {
                "table7" => {
                    let mut spec = ExperimentSpec::new("table7", scale).contexts([2, 4]);
                    for w in mixes::all() {
                        spec = spec.uni(w);
                    }
                    spec
                }
                "table10" => {
                    let mut spec = ExperimentSpec::new("table10", scale).contexts([2, 4, 8]);
                    for app in splash_suite() {
                        spec = spec.mp(app);
                    }
                    spec
                }
                other => {
                    return Err(CliError(format!(
                        "unknown artifact `{other}` (expected table7 or table10)"
                    )))
                }
            };
            if let Some(seed) = seed {
                spec = spec.seeds([seed]);
            }
            let runner = jobs.map(Runner::new).unwrap_or_else(Runner::from_env);
            let sweep = runner.run(&spec);
            println!("{}", sweep.to_table());
            println!(
                "{} cells, {} jobs, {:.2?} wall, {} scale",
                sweep.cells.len(),
                sweep.jobs,
                sweep.wall,
                sweep.scale.name()
            );
            match json {
                Some(dir) => {
                    let path = sweep
                        .write_json(std::path::Path::new(&dir))
                        .map_err(|e| CliError(format!("cannot write JSON into `{dir}`: {e}")))?;
                    println!("wrote {}", path.display());
                }
                None => sweep.maybe_emit_json(),
            }
        }
        Command::Trace { path, scheme, contexts } => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
            let source = crate::workloads::trace::TraceSource::from_text(&text, 0x1000)
                .map_err(|e| CliError(e.to_string()))?;
            let mut cpu = crate::core::Processor::new(
                crate::core::ProcConfig::new(scheme, contexts),
                crate::mem::UniMemSystem::new(crate::mem::MemConfig::workstation()),
            );
            cpu.attach(0, Box::new(source));
            let cycles = cpu.run_until_done(u64::MAX / 2);
            println!(
                "{path} | {scheme:?} | {} instructions in {cycles} cycles (IPC {:.3})\n",
                cpu.retired(0),
                cpu.retired(0) as f64 / cycles.max(1) as f64
            );
            println!("{}", breakdown_report("execution-time breakdown", cpu.breakdown()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_uni_defaults() {
        let cmd = parse(&argv("uni")).unwrap();
        assert_eq!(
            cmd,
            Command::Uni {
                workload: "FP".into(),
                scheme: Scheme::Interleaved,
                contexts: 4,
                quota: 40_000,
                seed: 0x19940501,
            }
        );
    }

    #[test]
    fn parses_uni_flags() {
        let cmd =
            parse(&argv("uni --workload DC --scheme blocked --contexts 2 --quota 999")).unwrap();
        match cmd {
            Command::Uni { workload, scheme, contexts, quota, .. } => {
                assert_eq!(workload, "DC");
                assert_eq!(scheme, Scheme::Blocked);
                assert_eq!(contexts, 2);
                assert_eq!(quota, 999);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_mp_and_trace() {
        assert!(matches!(parse(&argv("mp --app MP3D --nodes 4")).unwrap(), Command::Mp { .. }));
        match parse(&argv("trace --file t.txt --scheme hep")).unwrap() {
            Command::Trace { path, scheme, .. } => {
                assert_eq!(path, "t.txt");
                assert_eq!(scheme, Scheme::FineGrained);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("uni --scheme warp")).is_err());
        assert!(parse(&argv("uni --contexts")).is_err());
        assert!(parse(&argv("uni contexts 4")).is_err());
        assert!(parse(&argv("trace")).is_err());
        assert!(parse(&argv("uni --quota abc")).is_err());
        assert!(parse(&argv("sweep")).is_err());
        assert!(parse(&argv("sweep --artifact table7 --scale huge")).is_err());
        assert!(parse(&argv("sweep --artifact table7 --jobs x")).is_err());
    }

    #[test]
    fn parses_sweep() {
        let cmd = parse(&argv("sweep --artifact table7 --jobs 4 --scale ci --json out --seed 9"))
            .unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                artifact: "table7".into(),
                jobs: Some(4),
                scale: Some(Scale::Ci),
                json: Some("out".into()),
                seed: Some(9),
            }
        );
        match parse(&argv("sweep --artifact table10")).unwrap() {
            Command::Sweep { artifact, jobs, scale, json, seed } => {
                assert_eq!(artifact, "table10");
                assert_eq!(jobs, None);
                assert_eq!(scale, None);
                assert_eq!(json, None);
                assert_eq!(seed, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sweep_rejects_unknown_artifact() {
        let err = run(Command::Sweep {
            artifact: "table99".into(),
            jobs: Some(1),
            scale: Some(Scale::Ci),
            json: None,
            seed: None,
        })
        .unwrap_err();
        assert!(err.0.contains("unknown artifact"));
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
    }

    #[test]
    fn list_runs() {
        run(Command::List).unwrap();
    }

    #[test]
    fn unknown_names_error() {
        let err = run(Command::Uni {
            workload: "nope".into(),
            scheme: Scheme::Single,
            contexts: 1,
            quota: 10,
            seed: 1,
        })
        .unwrap_err();
        assert!(err.0.contains("unknown workload"));
    }
}
