//! # interleave — the interleaved multiple-context processor, reproduced
//!
//! A cycle-level reproduction of **“Interleaving: A Multithreading
//! Technique Targeting Multiprocessors and Workstations”** (Laudon,
//! Gupta & Horowitz, ASPLOS 1994), as a Rust workspace.
//!
//! The paper proposes a multiple-context processor that interleaves
//! instruction issue cycle-by-cycle over *available* hardware contexts
//! while keeping data caches and full pipeline interlocks, so that one
//! loaded context runs at full single-thread speed and a context switch
//! (making a context unavailable on a cache miss) costs only the few
//! instructions that context had in flight — instead of the full pipeline
//! flush of the classic *blocked* scheme.
//!
//! This facade crate re-exports the workspace's public APIs:
//!
//! * [`isa`] — instruction & operation-timing model (paper Table 3);
//! * [`pipeline`] — BTB, scoreboard, front end, issue window (Figure 5);
//! * [`mem`] — the workstation memory hierarchy (Tables 1–2);
//! * [`core`] — the single / blocked / interleaved processor models;
//! * [`workloads`] — synthetic Spec89-like applications, Table 5
//!   multiprogrammed mixes, the OS scheduler model, and the
//!   multiprogramming driver;
//! * [`mp`] — the DASH-like directory-coherent multiprocessor and
//!   SPLASH-like parallel application models;
//! * [`stats`] — cycle attribution and report rendering;
//! * [`obs`] — the instrumentation layer: metric [`obs::Registry`]
//!   (counters + histograms) and Chrome trace-event export
//!   ([`obs::chrome`], viewable in Perfetto);
//! * [`bench`] — the unified experiment API: [`bench::ExperimentSpec`]
//!   grids executed by the parallel [`bench::Runner`] (also behind the
//!   `interleave-sim sweep` subcommand).
//!
//! # Quickstart
//!
//! ```
//! use interleave::core::{ProcConfig, Processor, Scheme};
//! use interleave::mem::{MemConfig, UniMemSystem};
//! use interleave::workloads::{spec, SyntheticApp};
//!
//! // A two-context interleaved processor over the workstation memory
//! // system, running two applications.
//! let mut cpu = Processor::new(
//!     ProcConfig::new(Scheme::Interleaved, 2),
//!     UniMemSystem::new(MemConfig::workstation()),
//! );
//! cpu.attach(0, Box::new(SyntheticApp::new(spec::water_uni(), 0, 42).with_limit(2_000)));
//! cpu.attach(1, Box::new(SyntheticApp::new(spec::eqntott(), 1, 42).with_limit(2_000)));
//! cpu.run_until_done(1_000_000);
//! assert_eq!(cpu.retired(0) + cpu.retired(1), 4_000);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the harnesses that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use interleave_bench as bench;
pub use interleave_core as core;
pub use interleave_isa as isa;
pub use interleave_mem as mem;
pub use interleave_mp as mp;
pub use interleave_obs as obs;
pub use interleave_pipeline as pipeline;
pub use interleave_server as server;
pub use interleave_stats as stats;
pub use interleave_workloads as workloads;
