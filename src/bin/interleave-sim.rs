//! Command-line driver for the interleave simulator.
//!
//! ```console
//! $ interleave-sim uni --workload DC --scheme interleaved --contexts 4
//! $ interleave-sim mp --app Water --nodes 8 --contexts 8
//! $ interleave-sim trace --file my.trace
//! $ interleave-sim list
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match interleave::cli::parse(&args).and_then(interleave::cli::run) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", interleave::cli::USAGE);
            std::process::exit(2);
        }
    }
}
