//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] test macro, [`prop_oneof!`], ranges /
//! tuples / [`strategy::Just`] / [`arbitrary::any`] as strategies,
//! `prop_map` / `prop_flat_map`, [`collection::vec`], and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the generated inputs in the assertion message), no persistence
//! (`*.proptest-regressions` files are ignored), and case generation is
//! deterministic — case `i` of every test draws from a generator seeded
//! with `i`, so failures reproduce exactly across runs.

#![forbid(unsafe_code)]

/// Test-runner configuration (`ProptestConfig`).
pub mod test_runner {
    /// Controls how many cases each property test executes.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            // The real default is 256; 64 keeps the cycle-level simulator
            // tests fast while still exploring broadly.
            Config { cases: 64 }
        }
    }

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        /// The generator for case number `case`.
        pub fn for_case(case: u64) -> TestRng {
            TestRng { x: case.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample an empty domain");
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Box::new(self) }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V> {
        inner: Box<dyn Strategy<Value = V>>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate(rng)
        }
    }

    /// Uniform choice among equally weighted alternatives
    /// (what [`crate::prop_oneof!`] builds).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union of the given alternatives.
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one alternative");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value over the type's whole domain.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Inclusive (min, max) lengths.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Equally weighted choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(case);
                $(let $pat = $crate::strategy::Strategy::generate(
                    &$strat,
                    &mut __proptest_rng,
                );)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Op {
        A(u8),
        B(bool),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![(0u8..10).prop_map(Op::A), any::<bool>().prop_map(Op::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vectors_respect_sizes(v in crate::collection::vec(op(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn tuples_and_flat_map(
            (a, b) in (0u8..4, any::<u16>()),
            n in Just(3usize).prop_flat_map(|n| crate::collection::vec(0u32..10, n..=n)),
        ) {
            prop_assert!(a < 4);
            let _ = b;
            prop_assert_eq!(n.len(), 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = (0u64..1000, any::<u16>());
        let mut a = crate::test_runner::TestRng::for_case(5);
        let mut b = crate::test_runner::TestRng::for_case(5);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
