//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build environment has no crates.io access; this vendored crate
//! implements the subset of the criterion API the workspace's
//! `perf_criterion` harness uses. It measures with plain
//! [`std::time::Instant`] and prints `name: median ± spread` per
//! benchmark — no statistics engine, no HTML reports — which is enough
//! for the repo's cycles-simulated-per-second trajectory numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Benchmark driver configuration and registry.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "need at least two samples");
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Warm up and calibrate the per-sample iteration count.
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_millis(1);
        while warm_start.elapsed() < self.warm_up_time {
            b.iters = 1;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter = b.elapsed.max(Duration::from_nanos(1));
        }
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e6) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed / iters as u32);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let spread = samples[samples.len() - 1].saturating_sub(samples[0]);
        println!(
            "{name}: {:.3?} per iter (±{:.3?} over {} samples x {} iters)",
            median, spread, self.sample_size, iters
        );
        self
    }
}

/// Passed to the benchmark closure; times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevents the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("spin", |b| b.iter(|| runs = runs.wrapping_add(1)));
        assert!(runs > 0);
    }
}
