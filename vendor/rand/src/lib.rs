//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this vendored crate implements exactly the API subset the workspace
//! uses: [`rngs::SmallRng`] (seedable from a `u64`), [`Rng::gen`],
//! [`Rng::gen_bool`], and [`Rng::gen_range`] over integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! family the real `SmallRng` uses on 64-bit targets. Statistical quality
//! is far beyond what the simulator's synthetic streams need, and every
//! draw is deterministic in the seed, which is the property the
//! reproduction actually relies on (bit-identical reruns and
//! serial-vs-parallel sweep equality).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly over their whole domain
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty, matching the real crate.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_range_signed!(i8, i16, i32, i64, isize);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` over its whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        f64::sample(self) < p
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion, as used by the reference xoshiro
            // seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: u64 = rng.gen_range(5..5);
    }
}
