#!/usr/bin/env bash
# CI throughput regression gate: compares the aggregate host-throughput
# rate (`sim_cycles_per_sec`) of a freshly produced BENCH artifact
# against the checked-in baseline and fails on a >30% regression.
#
#   scripts/throughput_gate.sh <current BENCH json> [<baseline json>] [<baseline key>]
#
# The optional third argument names the baseline-file key to compare
# against (default `sim_cycles_per_sec`, the uniprocessor smoke rate;
# the nightly MP tier passes `table10_sim_cycles_per_sec` to gate the
# multiprocessor loop against the same baseline file).
#
# A missing or malformed rate on either side is a hard failure — an
# artifact without the key means the instrumentation came unwired, which
# is exactly the regression this gate exists to catch (an earlier
# version of check.sh passed silently in that case).
set -euo pipefail

current_json="${1:?usage: scripts/throughput_gate.sh <current BENCH json> [<baseline json>] [<baseline key>]}"
baseline_json="${2:-$(dirname "$0")/../ci/baseline_smoke.json}"
baseline_key="${3:-sim_cycles_per_sec}"

extract_rate() {
  # Prints the first top-level occurrence of the key, or fails loudly.
  local file="$1" key="$2" val
  if [ ! -f "$file" ]; then
    echo "throughput_gate: no such file: $file" >&2
    return 1
  fi
  val="$(grep -o "\"$key\": *[0-9.]*" "$file" | head -1 | sed 's/.*: *//')"
  if [ -z "$val" ]; then
    echo "throughput_gate: $file is missing \"$key\"" >&2
    return 1
  fi
  printf '%s\n' "$val"
}

current="$(extract_rate "$current_json" sim_cycles_per_sec)"
baseline="$(extract_rate "$baseline_json" "$baseline_key")"

# Pass iff current >= 0.7 * baseline (awk handles the floats; its exit
# status carries the verdict).
if awk -v cur="$current" -v base="$baseline" \
    'BEGIN { exit (cur + 0 >= base * 0.7) ? 0 : 1 }'; then
  echo "throughput_gate: ok ($current cycles/sec vs baseline $baseline_key=$baseline, floor $(awk -v b="$baseline" 'BEGIN { printf "%.1f", b * 0.7 }'))"
else
  echo "throughput_gate: FAIL — $current cycles/sec is more than 30% below the baseline $baseline_key=$baseline" >&2
  echo "throughput_gate: if this is an accepted slowdown, re-baseline ci/baseline_smoke.json (see EXPERIMENTS.md)" >&2
  exit 1
fi
