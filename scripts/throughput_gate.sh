#!/usr/bin/env bash
# CI throughput regression gate: compares the aggregate host-throughput
# rate (`sim_cycles_per_sec`) of a freshly produced BENCH artifact
# against the checked-in baseline and fails on a >30% regression.
#
#   scripts/throughput_gate.sh <current BENCH json | artifact dir> [<baseline json>]
#                              [<baseline key>] [<current PROFILE json>]
#                              [<baseline phases json>]
#
# The first argument may be a directory, in which case the gate
# resolves the single BENCH_*.json inside it explicitly. Zero or
# multiple candidates are a hard failure — in particular, per-shard
# slices (`BENCH_*.shard<K>of<N>.json`) rate only part of the grid and
# must be folded with `interleave-sim merge` before gating.
#
# The optional third argument names the baseline-file key to compare
# against (default `sim_cycles_per_sec`, the uniprocessor smoke rate;
# the nightly MP tier passes `table10_sim_cycles_per_sec` to gate the
# multiprocessor loop against the same baseline file).
#
# A baseline key ending in `_ms` flips the gate into latency mode:
# lower is better, the current document must carry the same key (e.g.
# the `SERVE_*.json` round-trip timing `submit --json` writes, gated
# via `serve_cached_roundtrip_ms`), and the gate fails when the current
# value exceeds baseline / 0.7 — the same 30% headroom as the rate
# gate, applied on the latency axis. Pass the current document as a
# file in this mode; directory resolution targets BENCH artifacts.
#
# The optional fourth/fifth arguments attribute the verdict to host
# phases: both are `interleave-profile-v1` documents (as written by
# `interleave-sim profile --json` or a sweep under INTERLEAVE_PROFILE=1).
# On a rate failure the gate names the phase whose share of the wall
# clock grew the most against the baseline profile (default
# `ci/baseline_phases.json`); on a pass it prints the current phase
# table (share of wall, calls) so CI logs always carry the attribution
# data a later regression hunt needs.
#
# A missing or malformed rate on either side is a hard failure — an
# artifact without the key means the instrumentation came unwired, which
# is exactly the regression this gate exists to catch (an earlier
# version of check.sh passed silently in that case).
set -euo pipefail

current_json="${1:?usage: scripts/throughput_gate.sh <current BENCH json> [<baseline json>] [<baseline key>] [<current PROFILE json>] [<baseline phases json>]}"
baseline_json="${2:-$(dirname "$0")/../ci/baseline_smoke.json}"
baseline_key="${3:-sim_cycles_per_sec}"
current_profile="${4:-}"
baseline_phases="${5:-$(dirname "$0")/../ci/baseline_phases.json}"

# Resolve a directory argument to the one full-grid BENCH artifact it
# holds. Explicit globbing: zero matches, several matches, and
# unmerged shard slices each fail with a message naming the fix,
# instead of `head -1`-style silent arbitration.
if [ -d "$current_json" ]; then
  dir="$current_json"
  shards=()
  for f in "$dir"/BENCH_*.shard*of*.json; do [ -e "$f" ] && shards+=("$f"); done
  if [ "${#shards[@]}" -gt 0 ]; then
    echo "throughput_gate: FAIL — $dir holds unmerged per-shard slices:" >&2
    printf '  %s\n' "${shards[@]}" >&2
    echo "throughput_gate: a shard slice rates only part of the grid; fold the set first" >&2
    echo "throughput_gate: (interleave-sim merge --out <dir> $dir) and gate the merged BENCH" >&2
    exit 1
  fi
  benches=()
  for f in "$dir"/BENCH_*.json; do [ -e "$f" ] && benches+=("$f"); done
  if [ "${#benches[@]}" -eq 0 ]; then
    echo "throughput_gate: no BENCH_*.json artifact in $dir" >&2
    exit 1
  fi
  if [ "${#benches[@]}" -gt 1 ]; then
    echo "throughput_gate: FAIL — $dir holds ${#benches[@]} BENCH artifacts; pass the one to gate explicitly:" >&2
    printf '  %s\n' "${benches[@]}" >&2
    exit 1
  fi
  current_json="${benches[0]}"
else
  case "$(basename "$current_json")" in
    *.shard*of*.json)
      echo "throughput_gate: FAIL — $current_json is a per-shard slice, not a full run;" >&2
      echo "throughput_gate: fold the shard set first (interleave-sim merge) and gate the merged BENCH" >&2
      exit 1
      ;;
  esac
fi

extract_rate() {
  # Prints the first top-level occurrence of the key, or fails loudly.
  local file="$1" key="$2" val
  if [ ! -f "$file" ]; then
    echo "throughput_gate: no such file: $file" >&2
    return 1
  fi
  val="$(grep -o "\"$key\": *[0-9.]*" "$file" | head -1 | sed 's/.*: *//')"
  if [ -z "$val" ]; then
    echo "throughput_gate: $file is missing \"$key\"" >&2
    return 1
  fi
  printf '%s\n' "$val"
}

# Names the phase whose self-time share of the wall clock grew the most
# from the baseline profile to the current one. Relies on the
# interleave-profile-v1 layout: one `{"name": ..., "self_ns": ...}`
# object per line, plus a top-level `"wall_ns"` scalar.
attribute_phase() {
  local base="$1" cur="$2"
  awk '
    FNR == 1 { file++ }
    /"wall_ns":/ { w = $2; gsub(/[^0-9]/, "", w); wall[file] = w + 0 }
    /"name":/ {
      line = $0
      name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
      self = line; sub(/.*"self_ns": /, "", self); sub(/[^0-9].*/, "", self)
      if (wall[file] > 0) share[file "," name] = (self + 0) / wall[file]
      names[name] = 1
    }
    END {
      worst = ""; growth = 0
      for (n in names) {
        d = share[2 "," n] - share[1 "," n]
        if (d > growth) { growth = d; worst = n }
      }
      if (worst != "")
        printf "%s (+%.1fpp of wall: %.1f%% -> %.1f%%)\n", \
          worst, growth * 100, share[1 "," worst] * 100, share[2 "," worst] * 100
    }
  ' "$base" "$cur"
}

# Prints the current profile's phases as a table: self share of wall,
# self ms, and call count, largest share first.
phase_table() {
  local cur="$1"
  awk '
    /"wall_ns":/ { w = $2; gsub(/[^0-9]/, "", w); wall = w + 0 }
    /"name":/ {
      line = $0
      name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
      self = line; sub(/.*"self_ns": /, "", self); sub(/[^0-9].*/, "", self)
      calls = line; sub(/.*"calls": /, "", calls); sub(/[^0-9].*/, "", calls)
      if (wall > 0)
        printf "%7.2f%% %10.1fms %10d  %s\n", \
          (self + 0) / wall * 100, (self + 0) / 1e6, calls + 0, name
    }
  ' "$cur" | sort -rn
}

# Latency keys (`*_ms`) invert the verdict: the current document
# carries the same key as the baseline, and lower is better.
case "$baseline_key" in
  *_ms)
    current="$(extract_rate "$current_json" "$baseline_key")"
    baseline="$(extract_rate "$baseline_json" "$baseline_key")"
    ceiling="$(awk -v b="$baseline" 'BEGIN { printf "%.1f", b / 0.7 }')"
    if awk -v cur="$current" -v base="$baseline" \
        'BEGIN { exit (cur + 0 <= base / 0.7) ? 0 : 1 }'; then
      echo "throughput_gate: ok (${current}ms vs baseline $baseline_key=${baseline}ms, ceiling ${ceiling}ms)"
      exit 0
    fi
    echo "throughput_gate: FAIL — ${current}ms exceeds the $baseline_key ceiling of ${ceiling}ms (baseline ${baseline}ms)" >&2
    echo "throughput_gate: if this is an accepted slowdown, re-baseline ci/baseline_smoke.json (see EXPERIMENTS.md)" >&2
    exit 1
    ;;
esac

current="$(extract_rate "$current_json" sim_cycles_per_sec)"
baseline="$(extract_rate "$baseline_json" "$baseline_key")"

# Pass iff current >= 0.7 * baseline (awk handles the floats; its exit
# status carries the verdict).
if awk -v cur="$current" -v base="$baseline" \
    'BEGIN { exit (cur + 0 >= base * 0.7) ? 0 : 1 }'; then
  echo "throughput_gate: ok ($current cycles/sec vs baseline $baseline_key=$baseline, floor $(awk -v b="$baseline" 'BEGIN { printf "%.1f", b * 0.7 }'))"
  if [ -n "$current_profile" ] && [ -f "$current_profile" ]; then
    echo "throughput_gate: phase table (self share of wall / self ms / calls):"
    phase_table "$current_profile"
  fi
else
  echo "throughput_gate: FAIL — $current cycles/sec is more than 30% below the baseline $baseline_key=$baseline" >&2
  if [ -n "$current_profile" ] && [ -f "$current_profile" ] && [ -f "$baseline_phases" ]; then
    culprit="$(attribute_phase "$baseline_phases" "$current_profile" || true)"
    if [ -n "$culprit" ]; then
      echo "throughput_gate: phase with the largest share growth: $culprit" >&2
    else
      echo "throughput_gate: no phase grew its share of wall vs $baseline_phases" >&2
    fi
  fi
  echo "throughput_gate: if this is an accepted slowdown, re-baseline ci/baseline_smoke.json (see EXPERIMENTS.md)" >&2
  exit 1
fi
