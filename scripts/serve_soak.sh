#!/usr/bin/env bash
# Concurrent-client soak for the serve daemon (the full-tier half of
# the CI serve-e2e job): boots `interleave-sim serve` on an ephemeral
# port with a result cache and a per-job STATUS_* mirror, fires N
# `submit --wait` clients in parallel with distinct (result-affecting)
# seeds, then resubmits the same wave and requires every resubmit to be
# served fully from the cache with byte-identical METRICS documents.
# The /stats page must account for every job and report cache hits.
#
#   scripts/serve_soak.sh [out_dir] [clients]
#
# Everything (server log, per-client logs, per-job STATUS files,
# fetched artifacts) lands under out_dir so CI can upload it on
# failure. Requires a release build (target/release/interleave-sim).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-$(mktemp -d)}"
clients="${2:-4}"
mkdir -p "$out"
log="$out/server.log"

serve_pid=""
cleanup() {
  [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
}
trap cleanup EXIT

./target/release/interleave-sim serve --addr 127.0.0.1:0 \
  --cache-dir "$out/cache" --status-dir "$out/status" >"$log" 2>&1 &
serve_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr="$(grep -o 'http://[0-9.]*:[0-9]*' "$log" | head -1 || true)"
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "serve_soak: server never reported a listening address:" >&2
  cat "$log" >&2
  exit 1
fi
addr="${addr#http://}"
echo "serve_soak: daemon on $addr, $clients concurrent clients"

# Wave 1: distinct seeds, so every job computes a distinct grid (the
# seed is result-affecting and part of the cache key).
pids=()
for i in $(seq 1 "$clients"); do
  ./target/release/interleave-sim submit --artifact smoke --scale ci \
    --seed "$((1000 + i))" --addr "$addr" --wait \
    --json "$out/client$i" >"$out/client$i.log" 2>&1 &
  pids+=("$!")
done
fail=0
for p in "${pids[@]}"; do wait "$p" || fail=1; done
if [ "$fail" -ne 0 ]; then
  echo "serve_soak: a concurrent submit failed; client logs:" >&2
  tail -n +1 "$out"/client*.log >&2
  exit 1
fi

# Wave 2: the same seeds again, concurrently. Every job must be served
# fully from the cache (the SERVE doc's cached key is written only
# then) and reproduce wave 1's METRICS document byte-for-byte.
pids=()
for i in $(seq 1 "$clients"); do
  ./target/release/interleave-sim submit --artifact smoke --scale ci \
    --seed "$((1000 + i))" --addr "$addr" --wait \
    --json "$out/recheck$i" >"$out/recheck$i.log" 2>&1 &
  pids+=("$!")
done
for p in "${pids[@]}"; do wait "$p" || fail=1; done
if [ "$fail" -ne 0 ]; then
  echo "serve_soak: a resubmit failed; client logs:" >&2
  tail -n +1 "$out"/recheck*.log >&2
  exit 1
fi
for i in $(seq 1 "$clients"); do
  if ! grep -q '"serve_cached_roundtrip_ms"' "$out/recheck$i/SERVE_smoke.json"; then
    echo "serve_soak: resubmit $i was not served from the result cache:" >&2
    cat "$out/recheck$i/SERVE_smoke.json" >&2
    exit 1
  fi
  if ! cmp -s "$out/client$i/METRICS_smoke.json" "$out/recheck$i/METRICS_smoke.json"; then
    echo "serve_soak: client $i cached METRICS differ from the fresh run" >&2
    exit 1
  fi
done

# The stats page accounts for both waves and the cache hits.
stats="$(./target/release/interleave-sim poll --stats --addr "$addr")"
done_jobs="$(printf '%s' "$stats" | grep -o '"jobs_done": [0-9]*' | sed 's/.*: //')"
hits="$(printf '%s' "$stats" | grep -o '"cache_hits": [0-9]*' | sed 's/.*: //')"
expected=$((clients * 2))
if [ "${done_jobs:-0}" -ne "$expected" ]; then
  echo "serve_soak: /stats reports jobs_done=${done_jobs:-?}, expected $expected" >&2
  printf '%s\n' "$stats" >&2
  exit 1
fi
if [ "${hits:-0}" -le 0 ]; then
  echo "serve_soak: /stats reports no cache hits after the resubmit wave" >&2
  printf '%s\n' "$stats" >&2
  exit 1
fi

kill -TERM "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
echo "serve_soak: ok ($clients clients x 2 waves, $hits cache hits, clean shutdown)"
