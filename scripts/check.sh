#!/usr/bin/env bash
# Full verification gate: release build, lint wall, the whole test
# suite, formatting, and release-binary smoke runs (trace export +
# schema validation, sweep throughput + regression gate). Run from
# anywhere inside the repository.
#
#   --quick      skip the release-binary smoke runs
#   --validate   also run the test suite with the invariant checkers on
#                (INTERLEAVE_VALIDATE=1 and --features validate) and
#                enforce the <2x wall-clock overhead budget on the
#                smoke grid
#   --serve-only release build + the serve daemon smoke alone (the CI
#                serve-e2e job's entry point)
#
# Set INTERLEAVE_ARTIFACT_DIR to keep the BENCH_*/METRICS_* smoke
# artifacts (CI uploads them); otherwise they go to a temp dir.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
validate=0
serve_only=0
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    --validate) validate=1 ;;
    --serve-only) serve_only=1 ;;
    *) echo "usage: scripts/check.sh [--quick] [--validate] [--serve-only]" >&2; exit 2 ;;
  esac
done

# Serve smoke: boot the daemon on an ephemeral port, submit the same
# CI-scale spec twice, and enforce the service contract end to end —
# the second submit is served fully from the result cache, both wire
# round-trips byte-match an offline sweep of the same spec (METRICS
# strict, BENCH with volatile host keys stripped), the cached
# round-trip clears the latency ceiling, and SIGTERM shuts the daemon
# down without leaving an orphan listener.
serve_pid=""
serve_smoke() {
  local sdir="$tmpdir/serve"
  mkdir -p "$sdir"
  local log="$sdir/serve.log"
  ./target/release/interleave-sim serve --addr 127.0.0.1:0 \
    --cache-dir "$sdir/cache" >"$log" 2>&1 &
  serve_pid=$!
  # The daemon prints `serve: listening on http://host:port` first;
  # grep the resolved ephemeral port out of the log.
  local addr=""
  for _ in $(seq 1 100); do
    addr="$(grep -o 'http://[0-9.]*:[0-9]*' "$log" | head -1 || true)"
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "check.sh: serve never reported a listening address:" >&2
    cat "$log" >&2
    exit 1
  fi
  addr="${addr#http://}"
  ./target/release/interleave-sim submit --artifact smoke --scale ci \
    --addr "$addr" --wait --json "$sdir/sub1" >/dev/null
  ./target/release/interleave-sim submit --artifact smoke --scale ci \
    --addr "$addr" --wait --json "$sdir/sub2" >/dev/null
  # The cached-path key is written only when every cell came out of
  # the cache, so its absence means the dedupe contract broke.
  if ! grep -q '"serve_cached_roundtrip_ms"' "$sdir/sub2/SERVE_smoke.json"; then
    echo "check.sh: second submit was not served from the result cache:" >&2
    cat "$sdir/sub2/SERVE_smoke.json" >&2
    exit 1
  fi
  ./target/release/interleave-sim sweep --artifact smoke --scale ci \
    --json "$sdir/offline" >/dev/null
  scripts/determinism_gate.sh "$sdir/sub1" "$sdir/offline"
  scripts/determinism_gate.sh "$sdir/sub2" "$sdir/offline"
  scripts/throughput_gate.sh "$sdir/sub2/SERVE_smoke.json" \
    ci/baseline_smoke.json serve_cached_roundtrip_ms
  kill -TERM "$serve_pid"
  wait "$serve_pid" 2>/dev/null || true
  serve_pid=""
  # No orphan listener: a reconnect to the old port must be refused.
  local host="${addr%:*}" port="${addr##*:}"
  if (exec 3<>"/dev/tcp/$host/$port") 2>/dev/null; then
    exec 3>&- 3<&- || true
    echo "check.sh: serve left an orphan listener on $addr after SIGTERM" >&2
    exit 1
  fi
  echo "check.sh: serve smoke ok (cached resubmit byte-identical to offline sweep, clean shutdown)"
}

if [ "$serve_only" -eq 1 ]; then
  cargo build --release
  if [ -n "${INTERLEAVE_ARTIFACT_DIR:-}" ]; then
    tmpdir="$INTERLEAVE_ARTIFACT_DIR"
    mkdir -p "$tmpdir"
    trap '[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
  else
    tmpdir="$(mktemp -d)"
    trap '{ [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null; rm -rf "$tmpdir"; } || true' EXIT
  fi
  serve_smoke
  echo "check.sh: all green (serve-only mode)"
  exit 0
fi

cargo build --release
cargo clippy --workspace -- -D warnings
cargo test -q --workspace
cargo fmt --check

if [ "$validate" -eq 1 ]; then
  # The checkers are always compiled; exercise both ways of turning
  # them on (the runtime switch and the feature flag).
  INTERLEAVE_VALIDATE=1 cargo test -q --workspace
  cargo test -q --workspace --features validate
fi

if [ "$quick" -eq 1 ]; then
  echo "check.sh: all green (quick mode, release smokes skipped)"
  exit 0
fi

if [ -n "${INTERLEAVE_ARTIFACT_DIR:-}" ]; then
  tmpdir="$INTERLEAVE_ARTIFACT_DIR"
  mkdir -p "$tmpdir"
  trap '[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
else
  tmpdir="$(mktemp -d)"
  trap '{ [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null; rm -rf "$tmpdir"; } || true' EXIT
fi

# Smoke: export a Chrome trace from the release binary and feed it back
# through the schema validator (tests/trace_schema.rs).
./target/release/interleave-sim trace --max-cycles 5000 --out "$tmpdir/trace.json"
INTERLEAVE_TRACE_FILE="$tmpdir/trace.json" cargo test -q --test trace_schema

# Smoke: run the seconds-long sweep grid and check the BENCH artifact
# reports a positive host-throughput rate (the hot loop's cycles/sec
# instrumentation stays wired up). A missing key is a hard failure: an
# earlier version piped an empty grep into awk, which exits 0 on zero
# lines of input and silently passed.
./target/release/interleave-sim sweep --artifact smoke --json "$tmpdir" >/dev/null
rate="$(grep -o '"sim_cycles_per_sec": [0-9.]*' "$tmpdir/BENCH_smoke.json" | head -1 | sed 's/.*: //')"
if [ -z "$rate" ]; then
  echo "check.sh: BENCH_smoke.json is missing sim_cycles_per_sec" >&2
  exit 1
fi
if ! awk -v r="$rate" 'BEGIN { exit (r + 0 > 0) ? 0 : 1 }'; then
  echo "check.sh: sweep reported no throughput (sim_cycles_per_sec=$rate)" >&2
  exit 1
fi

# Regression gate against the checked-in baseline floor.
scripts/throughput_gate.sh "$tmpdir/BENCH_smoke.json"

# Smoke: the same grid under the host-phase profiler. The PROFILE
# artifact must land next to BENCH/METRICS, and the profiled run must
# stay within 5% of the plain wall clock (plus 300ms of slack — these
# runs are short enough for scheduler noise to matter).
base_ms="$(grep -o '"wall_ms": [0-9]*' "$tmpdir/BENCH_smoke.json" | head -1 | sed 's/.*: //')"
mkdir -p "$tmpdir/profiled"
INTERLEAVE_PROFILE=1 ./target/release/interleave-sim sweep --artifact smoke \
  --json "$tmpdir/profiled" >/dev/null
if [ ! -f "$tmpdir/profiled/PROFILE_smoke.json" ]; then
  echo "check.sh: profiled sweep did not write PROFILE_smoke.json" >&2
  exit 1
fi
cp "$tmpdir/profiled/PROFILE_smoke.json" "$tmpdir/PROFILE_smoke.json"
prof_ms="$(grep -o '"wall_ms": [0-9]*' "$tmpdir/profiled/BENCH_smoke.json" | head -1 | sed 's/.*: //')"
if [ -z "$base_ms" ] || [ -z "$prof_ms" ]; then
  echo "check.sh: smoke artifacts are missing wall_ms" >&2
  exit 1
fi
budget=$((base_ms + base_ms / 20 + 300))
if [ "$prof_ms" -gt "$budget" ]; then
  echo "check.sh: profiler overhead exceeds budget (${prof_ms}ms vs ${base_ms}ms base, budget ${budget}ms)" >&2
  exit 1
fi
echo "check.sh: profiler overhead ${prof_ms}ms vs ${base_ms}ms base (budget ${budget}ms)"

# With the profiler disabled (the default) a re-run must land in the
# same budget: the instrumentation sites compile to a relaxed load and
# a branch, so any measurable delta here is a regression.
mkdir -p "$tmpdir/unprofiled"
./target/release/interleave-sim sweep --artifact smoke --json "$tmpdir/unprofiled" >/dev/null
off_ms="$(grep -o '"wall_ms": [0-9]*' "$tmpdir/unprofiled/BENCH_smoke.json" | head -1 | sed 's/.*: //')"
if [ -z "$off_ms" ] || [ "$off_ms" -gt "$budget" ]; then
  echo "check.sh: disabled-profiler run off budget (${off_ms:-?}ms vs ${base_ms}ms base, budget ${budget}ms)" >&2
  exit 1
fi

# The profiled run must also clear the throughput floor, with the phase
# documents wired in so a failure would be attributed.
scripts/throughput_gate.sh "$tmpdir/profiled/BENCH_smoke.json" \
  ci/baseline_smoke.json sim_cycles_per_sec \
  "$tmpdir/profiled/PROFILE_smoke.json" ci/baseline_phases.json

# De-batching guard: workload generation must stay batched. The
# per-instruction mark ("workloads.gen_instr") was retired when the
# generator went batched (DESIGN.md, "Hot path v2"): its reappearance,
# or a per-batch mark rate anywhere near one call per instruction,
# means the fetch path stopped pulling runs. The budget (0.08 source
# round-trips per simulated cycle) is ~3x the measured batched rate and
# ~4x under the old per-instruction rate.
profile_json="$tmpdir/profiled/PROFILE_smoke.json"
if grep -q '"name": "workloads.gen_instr"' "$profile_json"; then
  echo "check.sh: per-instruction workloads.gen_instr mark is back — generation de-batched?" >&2
  exit 1
fi
batches="$(grep -o '"name": "workloads.gen_batch", "calls": [0-9]*' "$profile_json" | sed 's/.*: //')"
sim_cycles="$(grep -o '"total_sim_cycles": [0-9]*' "$profile_json" | head -1 | sed 's/.*: //')"
if [ -z "$batches" ] || [ -z "$sim_cycles" ] || [ "$sim_cycles" -eq 0 ]; then
  echo "check.sh: PROFILE_smoke.json is missing workloads.gen_batch or total_sim_cycles" >&2
  exit 1
fi
if ! awk -v b="$batches" -v c="$sim_cycles" 'BEGIN { exit (b / c <= 0.08) ? 0 : 1 }'; then
  echo "check.sh: workloads.gen_batch rate $batches calls / $sim_cycles sim-cycles exceeds the 0.08/cycle batched budget" >&2
  exit 1
fi
echo "check.sh: generation stayed batched ($batches source round-trips over $sim_cycles sim-cycles)"

# Self-test of the phase attribution: synthetically slow one phase via
# the test hook and check the gate fails naming that phase.
mkdir -p "$tmpdir/slow"
INTERLEAVE_PROFILE=1 INTERLEAVE_PROFILE_SLOW=runner.cell:400000 \
  ./target/release/interleave-sim sweep --artifact smoke --json "$tmpdir/slow" >/dev/null
if gate_out="$(scripts/throughput_gate.sh "$tmpdir/slow/BENCH_smoke.json" \
    "$tmpdir/profiled/BENCH_smoke.json" sim_cycles_per_sec \
    "$tmpdir/slow/PROFILE_smoke.json" "$tmpdir/profiled/PROFILE_smoke.json" 2>&1)"; then
  echo "check.sh: slowed-phase gate unexpectedly passed:" >&2
  echo "$gate_out" >&2
  exit 1
fi
case "$gate_out" in
  *"runner.cell"*) echo "check.sh: slowed-phase gate correctly blamed runner.cell" ;;
  *)
    echo "check.sh: slowed-phase gate failed without naming runner.cell:" >&2
    echo "$gate_out" >&2
    exit 1
    ;;
esac

# Resume smoke: a sweep killed mid-grid must pick up from its per-cell
# checkpoints and produce artifacts byte-identical to an uninterrupted
# run, skipping the cells already computed. INTERLEAVE_SWEEP_KILL_AFTER
# is the deterministic kill hook: the process exits 86 after that many
# freshly computed cells have flushed their checkpoints.
mkdir -p "$tmpdir/resume" "$tmpdir/resume_ckpt"
set +e
INTERLEAVE_SWEEP_KILL_AFTER=1 ./target/release/interleave-sim sweep --artifact smoke \
  --jobs 1 --checkpoint-dir "$tmpdir/resume_ckpt" --json "$tmpdir/resume" >/dev/null 2>&1
kill_status=$?
set -e
if [ "$kill_status" -ne 86 ]; then
  echo "check.sh: mid-grid kill hook did not fire (exit $kill_status, expected 86)" >&2
  exit 1
fi
resume_log="$tmpdir/resume.log"
./target/release/interleave-sim sweep --artifact smoke --jobs 1 \
  --checkpoint-dir "$tmpdir/resume_ckpt" --json "$tmpdir/resume" >/dev/null 2>"$resume_log"
resumed="$(grep -c 'from checkpoint' "$resume_log" || true)"
if [ "$resumed" -lt 1 ]; then
  echo "check.sh: resumed run did not skip any checkpointed cells:" >&2
  cat "$resume_log" >&2
  exit 1
fi
scripts/determinism_gate.sh "$tmpdir/resume" "$tmpdir/unprofiled"
echo "check.sh: resume smoke ok ($resumed cells skipped after the mid-grid kill)"

# Shard smoke: a 2-way sharded run of the same grid, folded with the
# merge subcommand, must byte-match the single-process artifacts
# (METRICS strict, BENCH with volatile host keys stripped).
mkdir -p "$tmpdir/shards" "$tmpdir/merged"
./target/release/interleave-sim sweep --artifact smoke --shard 1/2 --json "$tmpdir/shards" >/dev/null
./target/release/interleave-sim sweep --artifact smoke --shard 2/2 --json "$tmpdir/shards" >/dev/null
./target/release/interleave-sim merge --out "$tmpdir/merged" "$tmpdir/shards"
scripts/determinism_gate.sh "$tmpdir/merged" "$tmpdir/unprofiled"
echo "check.sh: shard smoke ok (2-way shard set merged byte-identical)"

# Serve smoke: the daemon round-trip contract (see the function above).
serve_smoke

if [ "$validate" -eq 1 ]; then
  # Overhead budget: the same smoke grid with every checker enabled
  # must stay under 2x the plain wall-clock (plus 500ms of slack —
  # these runs are short enough for scheduler noise to matter).
  base_ms="$(grep -o '"wall_ms": [0-9]*' "$tmpdir/BENCH_smoke.json" | head -1 | sed 's/.*: //')"
  mkdir -p "$tmpdir/validate"
  INTERLEAVE_VALIDATE=1 ./target/release/interleave-sim sweep --artifact smoke --json "$tmpdir/validate" >/dev/null
  val_ms="$(grep -o '"wall_ms": [0-9]*' "$tmpdir/validate/BENCH_smoke.json" | head -1 | sed 's/.*: //')"
  if [ -z "$base_ms" ] || [ -z "$val_ms" ]; then
    echo "check.sh: smoke artifacts are missing wall_ms" >&2
    exit 1
  fi
  budget=$((base_ms * 2 + 500))
  if [ "$val_ms" -gt "$budget" ]; then
    echo "check.sh: validation overhead exceeds budget (${val_ms}ms vs ${base_ms}ms base, budget ${budget}ms)" >&2
    exit 1
  fi
  echo "check.sh: validation overhead ${val_ms}ms vs ${base_ms}ms base (budget ${budget}ms)"
fi

echo "check.sh: all green"
