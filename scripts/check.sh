#!/usr/bin/env bash
# Full verification gate: release build, lint wall, the whole test
# suite, formatting, and release-binary smoke runs (trace export +
# schema validation, sweep throughput). Run from anywhere inside the
# repository. `--quick` skips the release-binary smoke runs.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    *) echo "usage: scripts/check.sh [--quick]" >&2; exit 2 ;;
  esac
done

cargo build --release
cargo clippy --workspace -- -D warnings
cargo test -q
cargo fmt --check

if [ "$quick" -eq 1 ]; then
  echo "check.sh: all green (quick mode, release smokes skipped)"
  exit 0
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# Smoke: export a Chrome trace from the release binary and feed it back
# through the schema validator (tests/trace_schema.rs).
./target/release/interleave-sim trace --max-cycles 5000 --out "$tmpdir/trace.json"
INTERLEAVE_TRACE_FILE="$tmpdir/trace.json" cargo test -q --test trace_schema

# Smoke: run the seconds-long sweep grid and check the BENCH artifact
# reports a positive host-throughput rate (the hot loop's cycles/sec
# instrumentation stays wired up).
./target/release/interleave-sim sweep --artifact smoke --json "$tmpdir" >/dev/null
grep -o '"sim_cycles_per_sec": [0-9.]*' "$tmpdir/BENCH_smoke.json" | head -1 \
  | awk '{ if ($2 + 0 <= 0) { print "check.sh: sweep reported no throughput" > "/dev/stderr"; exit 1 } }'

echo "check.sh: all green"
