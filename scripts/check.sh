#!/usr/bin/env bash
# Full verification gate: release build, the whole test suite, and
# formatting. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
echo "check.sh: all green"
