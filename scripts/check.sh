#!/usr/bin/env bash
# Full verification gate: release build, lint wall, the whole test
# suite, formatting, and an instrumentation smoke run (trace export +
# schema validation). Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo clippy --workspace -- -D warnings
cargo test -q
cargo fmt --check

# Smoke: export a Chrome trace from the release binary and feed it back
# through the schema validator (tests/trace_schema.rs).
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/interleave-sim trace --max-cycles 5000 --out "$tmpdir/trace.json"
INTERLEAVE_TRACE_FILE="$tmpdir/trace.json" cargo test -q --test trace_schema

echo "check.sh: all green"
