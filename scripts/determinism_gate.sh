#!/usr/bin/env bash
# Nightly determinism gate: the parallel multiprocessor driver
# (`--mp-jobs`) is a pure host optimization, so two sweep runs that
# differ only in that knob must produce identical simulated artifacts.
# The same contract covers distributed sweeps: `interleave-sim merge`
# of a full `--shard K/N` set must reproduce the single-process output.
#
#   scripts/determinism_gate.sh <dir A> <dir B>
#   scripts/determinism_gate.sh <merged artifact file> <reference file or dir>
#
# Directory mode compares every METRICS_*.json present in dir A
# byte-for-byte against dir B, and every BENCH_*.json with the
# host-side volatile keys (unix_timestamp, jobs, wall_ms,
# sim_cycles_per_sec) stripped — those describe the machine that ran
# the sweep, not the simulated results. A file present on one side but
# not the other is a failure, as is an empty directory (nothing
# compared must not read as success).
#
# Merged-artifact mode (first argument is a file, e.g. the
# BENCH/METRICS output of `interleave-sim merge`) compares just that
# artifact against the reference — a file, or a directory holding a
# file of the same name.
#
# Unmerged shard slices (`*.shard<K>of<N>.json`) are partial grids and
# can never byte-match a full run; if any are present the gate fails
# immediately and tells you to merge first.
set -euo pipefail

side_a="${1:?usage: scripts/determinism_gate.sh <dir A|merged artifact> <dir B|reference>}"
side_b="${2:?usage: scripts/determinism_gate.sh <dir A|merged artifact> <dir B|reference>}"

# Removes the volatile host-side keys from a BENCH json: the top-level
# unix_timestamp/jobs/wall_ms/sim_cycles_per_sec lines, and the inline
# per-cell wall_ms/sim_cycles_per_sec fields.
strip_volatile() {
  sed -e '/^  "unix_timestamp"/d' \
      -e '/^  "jobs"/d' \
      -e '/^  "wall_ms"/d' \
      -e '/^  "sim_cycles_per_sec"/d' \
      -e 's/"wall_ms": [0-9]*, //g' \
      -e 's/"sim_cycles_per_sec": [0-9.]*, //g' \
      "$1"
}

# Hard-fails when a path (or a directory containing one) is an
# unmerged per-shard slice: comparing a slice against a full grid can
# only ever fail confusingly, so name the actual fix instead.
reject_shards() {
  local side="$1" found=()
  if [ -d "$side" ]; then
    local f
    for f in "$side"/BENCH_*.shard*of*.json "$side"/METRICS_*.shard*of*.json \
             "$side"/PROFILE_*.shard*of*.json; do
      [ -e "$f" ] && found+=("$f")
    done
  else
    case "$(basename "$side")" in
      *.shard*of*.json) found+=("$side") ;;
    esac
  fi
  if [ "${#found[@]}" -gt 0 ]; then
    echo "determinism_gate: FAIL — unmerged shard artifacts present:" >&2
    printf '  %s\n' "${found[@]}" >&2
    echo "determinism_gate: a shard slice is a partial grid and cannot match a full run;" >&2
    echo "determinism_gate: fold the shard set first: interleave-sim merge --out <dir> <shard dir>" >&2
    exit 1
  fi
}

compared=0
fail=0

# Compares one artifact pair; METRICS strictly, BENCH after stripping
# the volatile host keys.
compare_one() {
  local a="$1" b="$2" name="$3"
  if [ ! -f "$b" ]; then
    echo "determinism_gate: $name exists at $a but reference $b is missing" >&2
    fail=1
    return
  fi
  case "$name" in
    METRICS_*)
      if ! cmp -s "$a" "$b"; then
        echo "determinism_gate: FAIL — $name differs byte-for-byte:" >&2
        diff "$a" "$b" | head -20 >&2 || true
        fail=1
      fi
      ;;
    BENCH_*)
      if ! diff <(strip_volatile "$a") <(strip_volatile "$b") >/dev/null; then
        echo "determinism_gate: FAIL — $name differs after stripping volatile keys:" >&2
        diff <(strip_volatile "$a") <(strip_volatile "$b") | head -20 >&2 || true
        fail=1
      fi
      ;;
    *)
      echo "determinism_gate: $name is neither a BENCH_* nor a METRICS_* artifact" >&2
      fail=1
      ;;
  esac
  compared=$((compared + 1))
}

reject_shards "$side_a"
reject_shards "$side_b"

if [ -f "$side_a" ]; then
  # Merged-artifact mode: one file against a reference file or dir.
  name="$(basename "$side_a")"
  if [ -d "$side_b" ]; then
    compare_one "$side_a" "$side_b/$name" "$name"
  else
    compare_one "$side_a" "$side_b" "$name"
  fi
else
  for a in "$side_a"/METRICS_*.json "$side_a"/BENCH_*.json; do
    [ -e "$a" ] || continue
    name="$(basename "$a")"
    compare_one "$a" "$side_b/$name" "$name"
  done
fi

if [ "$compared" -eq 0 ]; then
  echo "determinism_gate: no BENCH_*/METRICS_* artifacts found in $side_a" >&2
  exit 1
fi
if [ "$fail" -ne 0 ]; then
  echo "determinism_gate: FAIL — simulated results differ between the two runs" >&2
  exit 1
fi
echo "determinism_gate: ok ($compared artifacts identical across the two runs)"
