#!/usr/bin/env bash
# Nightly determinism gate: the parallel multiprocessor driver
# (`--mp-jobs`) is a pure host optimization, so two sweep runs that
# differ only in that knob must produce identical simulated artifacts.
#
#   scripts/determinism_gate.sh <dir A> <dir B>
#
# Compares every METRICS_*.json present in dir A byte-for-byte against
# dir B, and every BENCH_*.json with the host-side volatile keys
# (unix_timestamp, jobs, wall_ms, sim_cycles_per_sec) stripped — those
# describe the machine that ran the sweep, not the simulated results.
# A file present on one side but not the other is a failure, as is an
# empty directory (nothing compared must not read as success).
set -euo pipefail

dir_a="${1:?usage: scripts/determinism_gate.sh <dir A> <dir B>}"
dir_b="${2:?usage: scripts/determinism_gate.sh <dir A> <dir B>}"

# Removes the volatile host-side keys from a BENCH json: the top-level
# unix_timestamp/jobs/wall_ms/sim_cycles_per_sec lines, and the inline
# per-cell wall_ms/sim_cycles_per_sec fields.
strip_volatile() {
  sed -e '/^  "unix_timestamp"/d' \
      -e '/^  "jobs"/d' \
      -e '/^  "wall_ms"/d' \
      -e '/^  "sim_cycles_per_sec"/d' \
      -e 's/"wall_ms": [0-9]*, //g' \
      -e 's/"sim_cycles_per_sec": [0-9.]*, //g' \
      "$1"
}

compared=0
fail=0

for a in "$dir_a"/METRICS_*.json "$dir_a"/BENCH_*.json; do
  [ -e "$a" ] || continue
  name="$(basename "$a")"
  b="$dir_b/$name"
  if [ ! -f "$b" ]; then
    echo "determinism_gate: $name exists in $dir_a but not in $dir_b" >&2
    fail=1
    continue
  fi
  case "$name" in
    METRICS_*)
      if ! cmp -s "$a" "$b"; then
        echo "determinism_gate: FAIL — $name differs byte-for-byte:" >&2
        diff "$a" "$b" | head -20 >&2 || true
        fail=1
      fi
      ;;
    BENCH_*)
      if ! diff <(strip_volatile "$a") <(strip_volatile "$b") >/dev/null; then
        echo "determinism_gate: FAIL — $name differs after stripping volatile keys:" >&2
        diff <(strip_volatile "$a") <(strip_volatile "$b") | head -20 >&2 || true
        fail=1
      fi
      ;;
  esac
  compared=$((compared + 1))
done

if [ "$compared" -eq 0 ]; then
  echo "determinism_gate: no BENCH_*/METRICS_* artifacts found in $dir_a" >&2
  exit 1
fi
if [ "$fail" -ne 0 ]; then
  echo "determinism_gate: FAIL — simulated results changed with the host worker count" >&2
  exit 1
fi
echo "determinism_gate: ok ($compared artifacts identical across the two runs)"
