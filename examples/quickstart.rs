//! Quickstart: build an interleaved multiple-context processor, run two
//! applications on it, and compare it against the single-context and
//! blocked alternatives.
//!
//! Run with: `cargo run --release --example quickstart`

use interleave::core::{ProcConfig, Processor, Scheme};
use interleave::mem::{MemConfig, UniMemSystem};
use interleave::stats::Category;
use interleave::workloads::{spec, SyntheticApp};

/// Instructions each application executes.
const WORK: u64 = 100_000;

fn run(scheme: Scheme, contexts: usize) -> (u64, f64, f64) {
    let mut cpu = Processor::new(
        ProcConfig::new(scheme, contexts),
        UniMemSystem::new(MemConfig::workstation()),
    );
    // Two applications: a divide-heavy FP code and a branchy integer code.
    let apps = [spec::water_uni(), spec::eqntott()];
    for (ctx, profile) in apps.iter().enumerate().take(contexts) {
        let quota = WORK * apps.len() as u64 / contexts as u64;
        cpu.attach(ctx, Box::new(SyntheticApp::new(*profile, ctx, 2026).with_limit(quota)));
    }
    let cycles = cpu.run_until_done(200_000_000);
    assert!(cpu.is_done(), "run did not complete");
    let busy = cpu.breakdown().fraction(Category::Busy);
    let switch = cpu.breakdown().fraction(Category::Switch);
    (cycles, busy, switch)
}

fn main() {
    println!("Quickstart: two applications, {} instructions each\n", WORK);
    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>9}",
        "configuration", "cycles", "busy", "switch", "speedup"
    );
    let (base, busy, switch) = run(Scheme::Single, 1);
    println!(
        "{:<22} {:>10} {:>7.1}% {:>7.1}% {:>8.2}x",
        "single-context",
        base,
        busy * 100.0,
        switch * 100.0,
        1.0
    );
    for (label, scheme) in
        [("blocked, 2 ctx", Scheme::Blocked), ("interleaved, 2 ctx", Scheme::Interleaved)]
    {
        let (cycles, busy, switch) = run(scheme, 2);
        println!(
            "{:<22} {:>10} {:>7.1}% {:>7.1}% {:>8.2}x",
            label,
            cycles,
            busy * 100.0,
            switch * 100.0,
            base as f64 / cycles as f64
        );
    }
    println!();
    println!("The interleaved scheme's cycle-by-cycle issue and selective squash convert");
    println!("stall time into busy time at a fraction of the blocked scheme's switch cost");
    println!("(paper Section 3).");
}
