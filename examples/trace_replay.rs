//! Trace replay: write a small trace in the text format, replay it on the
//! simulator, and print the execution-time breakdown — how externally
//! generated traces drive the same models the paper drove with
//! Tango-Lite.
//!
//! Run with: `cargo run --release --example trace_replay`

use interleave::core::{ProcConfig, Processor, Scheme};
use interleave::mem::{MemConfig, UniMemSystem};
use interleave::stats::Category;
use interleave::workloads::trace::TraceSource;

const DEMO_TRACE: &str = "\
# A tiny kernel: a strided read-modify-write loop with an FP divide.
L 0x10000
F
S 0x10000
L 0x11000
F
S 0x11000
D            # FP divide (61 cycles)
K 57         # compiler backoff hint covering the divide
F            # ...its consumer
B 1 0x0      # loop back
L 0x12000
F
S 0x12000
L 0x13000
F
S 0x13000
A
A
";

fn main() {
    println!("Replaying a hand-written trace on each scheme:\n{DEMO_TRACE}");
    for (scheme, contexts) in [(Scheme::Single, 1), (Scheme::Interleaved, 2)] {
        let mut cpu = Processor::new(
            ProcConfig::new(scheme, contexts),
            UniMemSystem::new(MemConfig::workstation()),
        );
        cpu.attach(0, Box::new(TraceSource::from_text(DEMO_TRACE, 0x1000).expect("valid trace")));
        if contexts > 1 {
            // A second copy of the trace keeps the other context busy.
            cpu.attach(
                1,
                Box::new(TraceSource::from_text(DEMO_TRACE, 0x2000).expect("valid trace")),
            );
        }
        let cycles = cpu.run_until_done(1_000_000);
        assert!(cpu.is_done());
        let retired: u64 = (0..contexts).map(|c| cpu.retired(c)).sum();
        println!(
            "{scheme:?} x{contexts}: {retired} instructions in {cycles} cycles \
             (busy {:.0}%, data {:.0}%, long-stall {:.0}%)",
            cpu.breakdown().fraction(Category::Busy) * 100.0,
            cpu.breakdown().fraction(Category::DataMem) * 100.0,
            cpu.breakdown().fraction(Category::InstrLong) * 100.0,
        );
    }
    println!("\nTrace format: A/H/M/V int ops, F/X/D/d FP ops, L/S <addr>, B <taken> <target>,");
    println!("K <cycles> backoff, N nop — see `interleave::workloads::trace`.");
}
