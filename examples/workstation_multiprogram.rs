//! The workstation scenario from the paper's introduction: a
//! multiprogrammed mix of four applications time-shared by the OS, run on
//! single-context, blocked, and interleaved processors.
//!
//! Run with: `cargo run --release --example workstation_multiprogram [WORKLOAD]`
//! where WORKLOAD is one of IC, DC, DT, FP, R0, R1, SP (default FP).

use interleave::core::Scheme;
use interleave::stats::{Category, Table};
use interleave::workloads::{mixes, MultiprogramSim};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "FP".to_string());
    let workload = mixes::all()
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown workload {name}; expected IC, DC, DT, FP, R0, R1, or SP");
            std::process::exit(2);
        });
    let apps: Vec<&str> = workload.apps.iter().map(|a| a.name).collect();
    println!("Workload {} = {}\n", workload.name, apps.join(" + "));

    let mut t =
        Table::new("multiprogrammed throughput (OS time slices, affinity, cache interference)");
    t.headers(["configuration", "IPC", "vs single", "busy", "data-mem", "switch"]);
    let mut base = None;
    for (scheme, contexts) in [
        (Scheme::Single, 1),
        (Scheme::Blocked, 2),
        (Scheme::Interleaved, 2),
        (Scheme::Blocked, 4),
        (Scheme::Interleaved, 4),
    ] {
        let result = MultiprogramSim::builder(workload.clone())
            .scheme(scheme)
            .contexts(contexts)
            .build()
            .run();
        let ipc = result.throughput();
        let b = *base.get_or_insert(ipc);
        t.row([
            format!("{scheme:?} x{contexts}"),
            format!("{ipc:.3}"),
            format!("{:.2}x", ipc / b),
            format!("{:.0}%", result.breakdown.fraction(Category::Busy) * 100.0),
            format!("{:.0}%", result.breakdown.fraction(Category::DataMem) * 100.0),
            format!("{:.0}%", result.breakdown.fraction(Category::Switch) * 100.0),
        ]);
    }
    println!("{t}");
    println!("Each application retires a fixed instruction quota; the OS rotates resident");
    println!("applications every three 60k-cycle slices and displaces cache state at every");
    println!("scheduler call (paper Table 6).");
}
