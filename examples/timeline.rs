//! The paper's Figure 3 as a live timeline: four threads (A: 2
//! instructions; B: 3 with a two-cycle dependency; C: 4; D: 6), each
//! ending with a cache miss, under the blocked and interleaved schemes.
//!
//! Run with: `cargo run --release --example timeline`

use interleave::core::{IssueRecord, ProcConfig, Processor, Scheme, VecSource};
use interleave::isa::{Instr, Reg};
use interleave::mem::{MemConfig, UniMemSystem};

fn alu(pc: u64) -> Instr {
    Instr::alu(pc, Some(Reg::int(1)), Some(Reg::int(2)), None)
}

fn machine(scheme: Scheme) -> Processor<UniMemSystem> {
    let mut mem_cfg = MemConfig::workstation();
    mem_cfg.tlbs_enabled = false;
    let mut cpu = Processor::new(ProcConfig::new(scheme, 4), UniMemSystem::new(mem_cfg));
    for pc in (0..0x1000u64).step_by(32) {
        cpu.port_mut().preload_inst(pc);
    }
    cpu.port_mut().preload_data(0x10);
    cpu.set_trace(true);
    // Thread A: two instructions.
    cpu.attach(
        0,
        Box::new(VecSource::new(vec![
            alu(0x100),
            Instr::load(0x104, Reg::int(4), Reg::int(29), 0x8000_0000),
        ])),
    );
    // Thread B: three instructions with a two-cycle dependency between the
    // first (a hit load) and the second.
    cpu.attach(
        1,
        Box::new(VecSource::new(vec![
            Instr::load(0x200, Reg::int(4), Reg::int(29), 0x10),
            Instr::alu(0x204, Some(Reg::int(5)), Some(Reg::int(4)), None),
            Instr::load(0x208, Reg::int(6), Reg::int(29), 0x8000_0040),
        ])),
    );
    // Thread C: four instructions.
    cpu.attach(
        2,
        Box::new(VecSource::new(vec![
            alu(0x300),
            alu(0x304),
            alu(0x308),
            Instr::load(0x30C, Reg::int(4), Reg::int(29), 0x8000_0080),
        ])),
    );
    // Thread D: six instructions.
    cpu.attach(
        3,
        Box::new(VecSource::new(vec![
            alu(0x400),
            alu(0x404),
            alu(0x408),
            alu(0x40C),
            alu(0x410),
            Instr::load(0x414, Reg::int(4), Reg::int(29), 0x8000_00C0),
        ])),
    );
    cpu
}

fn main() {
    println!("Figure 3 timeline: issue slot per cycle");
    println!("(A-D: issuing context, '-': dependency stall, '.': bubble)\n");
    for scheme in [Scheme::Blocked, Scheme::Interleaved] {
        let mut cpu = machine(scheme);
        let cycles = cpu.run_until_done(10_000);
        assert!(cpu.is_done(), "timeline run did not finish");
        let timeline: String = cpu
            .trace()
            .iter()
            .map(|r| match r {
                IssueRecord::Issued { ctx, .. } => (b'A' + *ctx as u8) as char,
                IssueRecord::Stalled { .. } => '-',
                IssueRecord::Bubble(Some(_)) => '.',
                IssueRecord::Bubble(None) => ' ',
            })
            .collect();
        println!("{:<12} ({cycles:3} cycles):", format!("{scheme:?}"));
        println!("  {}\n", timeline.trim_end());
    }
    println!("As in the paper: interleaving spaces out B's dependent instructions (no");
    println!("stall), and a miss squashes only the missing context's instructions, so all");
    println!("four threads complete well before the blocked scheme.");
}
