//! The multiprocessor scenario of paper Section 5.2: a SPLASH-like
//! parallel application on a DASH-like directory-coherent machine,
//! comparing context counts and schemes.
//!
//! Run with: `cargo run --release --example multiprocessor_splash [APP]`
//! where APP is one of MP3D, Barnes, Water, Ocean, Locus, PTHOR, Cholesky
//! (default Water).

use interleave::core::Scheme;
use interleave::mp::{splash_suite, MpSim};
use interleave::stats::{Category, Table};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Water".to_string());
    let app = splash_suite()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown application {name}");
            std::process::exit(2);
        });
    let nodes = 8;
    println!(
        "{} on {} nodes ({:?} sharing, {}KB shared data)\n",
        app.name,
        nodes,
        app.pattern,
        app.shared_bytes / 1024
    );

    let mut t = Table::new("fixed total work, split over nodes x contexts threads");
    t.headers(["configuration", "cycles", "speedup", "busy", "memory", "sync", "switch"]);
    let mut base = None;
    for (scheme, contexts) in [
        (Scheme::Single, 1),
        (Scheme::Blocked, 4),
        (Scheme::Interleaved, 4),
        (Scheme::Blocked, 8),
        (Scheme::Interleaved, 8),
    ] {
        let result = MpSim::builder(app.clone())
            .scheme(scheme)
            .nodes(nodes)
            .contexts(contexts)
            .build()
            .run();
        let b = *base.get_or_insert(result.cycles);
        t.row([
            format!("{scheme:?} x{contexts}"),
            result.cycles.to_string(),
            format!("{:.2}x", b as f64 / result.cycles as f64),
            format!("{:.0}%", result.breakdown.fraction(Category::Busy) * 100.0),
            format!("{:.0}%", result.breakdown.fraction(Category::DataMem) * 100.0),
            format!("{:.0}%", result.breakdown.fraction(Category::Sync) * 100.0),
            format!("{:.0}%", result.breakdown.fraction(Category::Switch) * 100.0),
        ]);
    }
    println!("{t}");
    println!("Directory-classified misses sample DASH-like latencies (local 22-38, remote");
    println!("80-130, remote-cache 100-160 cycles); locks and barriers park contexts and");
    println!("wake them on grant.");
}
