//! Equivalence gate for the shared discrete-event engine
//! (`crates/engine`): the uniprocessor and multiprocessor drivers now
//! instantiate the engine's event queue, idle-bound authority, message
//! router, and quantum-barrier schedule instead of bespoke copies. These
//! tests pin the pre-extraction golden values and require the
//! engine-backed drivers to reproduce them exactly — with the adaptive
//! lookahead widening both off (the historical fixed schedule) and on
//! (the default), at every worker count, down to the serialized metrics
//! artifact bytes.

use interleave::bench::{ExperimentSpec, Runner, Scale};
use interleave::core::Scheme;
use interleave::mp::{splash_suite, MpSim};
use interleave::stats::{Breakdown, Category};
use interleave::workloads::{mixes, MultiprogramSim};

/// Asserts a breakdown matches golden per-category values in
/// `Category::ALL` order.
fn assert_breakdown(what: &str, got: &Breakdown, golden: [u64; 7]) {
    for (c, want) in Category::ALL.into_iter().zip(golden) {
        assert_eq!(got.get(c), want, "{what}: category {c:?} diverged from the golden value");
    }
}

/// The uniprocessor hot loop now drains the engine's typed event queue.
/// Golden values captured from the seed implementation must survive the
/// port unchanged.
///
/// Re-goldened once when the synthetic generator moved from a vendored
/// SmallRng to the keyed `engine::rand64` counter scheme (see DESIGN.md,
/// "Hot path v2"): the RNG stream changed, so fixed-seed values shifted,
/// while every distribution-level oracle (paper-claim tolerances, litmus
/// differentials, idle-skip and --jobs invariance) held unchanged.
#[test]
fn engine_backed_uni_driver_reproduces_seed_goldens() {
    let fp = MultiprogramSim::builder(mixes::fp())
        .scheme(Scheme::Interleaved)
        .contexts(2)
        .quota(2_000)
        .warmup(500)
        .build()
        .run();
    assert_eq!(fp.cycles, 78_944);
    assert_eq!(fp.instructions, 28_303);
    assert_breakdown(
        "uni fp/interleaved/2",
        &fp.breakdown,
        [28_137, 13_165, 1_708, 9_848, 15_998, 0, 10_088],
    );

    let ic = MultiprogramSim::builder(mixes::ic())
        .scheme(Scheme::Blocked)
        .contexts(4)
        .quota(2_000)
        .warmup(500)
        .build()
        .run();
    assert_eq!(ic.cycles, 27_392);
    assert_eq!(ic.instructions, 9_370);
    assert_breakdown("uni ic/blocked/4", &ic.breakdown, [9_343, 5_766, 50, 5_053, 1_049, 0, 6_131]);
}

/// The multiprocessor lockstep loop now runs on the engine's
/// `QuantumSchedule`. With adaptive widening disabled it must replay the
/// seed's fixed 80-cycle barrier schedule bit for bit; with it enabled
/// (the default) the widened schedule must still land on the same
/// numbers, serially and at every worker count.
#[test]
fn engine_backed_mp_driver_reproduces_seed_goldens() {
    let run = |adaptive: bool, jobs: usize| {
        MpSim::builder(splash_suite()[0].clone())
            .scheme(Scheme::Interleaved)
            .nodes(4)
            .contexts(2)
            .work(12_000)
            .warmup(500)
            .adaptive(adaptive)
            .mp_jobs(jobs)
            .build()
            .run()
    };
    let fixed = run(false, 1);
    assert_eq!(fixed.cycles, 28_160);
    assert_breakdown(
        "mp splash0/interleaved/4x2",
        &fixed.breakdown,
        [12_626, 5_983, 1_460, 0, 81_550, 0, 11_021],
    );
    for adaptive in [false, true] {
        for jobs in [1, 2, 4] {
            let got = run(adaptive, jobs);
            assert_eq!(
                fixed, got,
                "engine schedule (adaptive={adaptive}, mp_jobs={jobs}) diverged from the golden run"
            );
        }
    }
}

/// Sweep-level gate: a grid run with adaptive widening forced off must
/// reproduce the default (adaptive) grid cell for cell, down to the
/// serialized metrics artifact bytes — the widened schedule is a pure
/// host optimization.
#[test]
fn adaptive_schedule_produces_byte_identical_metrics_artifacts() {
    let grid = |adaptive: bool| {
        let spec = ExperimentSpec::new("engine_equivalence", Scale::Ci)
            .uni(mixes::ic())
            .mp(splash_suite()[0].clone())
            .contexts([2, 4])
            .quota(2_000)
            .work(12_000)
            .warmup(500)
            .adaptive(adaptive);
        Runner::new(2).run(&spec)
    };
    let on = grid(true);
    let off = grid(false);
    assert!(on.results_match(&off), "adaptive widening changed sweep results");
    assert_eq!(
        on.metrics_json(),
        off.metrics_json(),
        "METRICS artifact must be byte-identical with adaptive widening on or off"
    );
}
