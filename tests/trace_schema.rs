//! Schema and determinism tests for the instrumentation artifacts: the
//! Chrome trace-event export and the sweep metric registry.
//!
//! The exporter's contract is structural (every event carries `ph`,
//! `ts`, `pid`, `tid`; spans add `name`/`dur`), deterministic (a fixed
//! seed yields a byte-identical document), and *reconciled*: the summed
//! span durations per category equal the processor's own cycle
//! `Breakdown`, so a Perfetto view of a run never disagrees with the
//! paper's Figure 6-style accounting.

use interleave::bench::{ExperimentSpec, Runner, Scale};
use interleave::core::{ProcConfig, Processor, Scheme};
use interleave::mem::{MemConfig, UniMemSystem};
use interleave::obs::chrome::{validate, TraceSummary};
use interleave::stats::Category;
use interleave::workloads::{mixes, SyntheticApp};

/// A small traced interleaved run over the FP workload.
fn traced_run(seed: u64) -> (Processor<UniMemSystem>, u64) {
    let contexts = 2;
    let mut cpu = Processor::new(
        ProcConfig::new(Scheme::Interleaved, contexts),
        UniMemSystem::new(MemConfig::workstation()),
    );
    let workload = mixes::fp();
    for ctx in 0..contexts {
        let profile = workload.apps[ctx % workload.apps.len()];
        cpu.attach(ctx, Box::new(SyntheticApp::new(profile, ctx, seed)));
    }
    cpu.set_trace(true);
    let cycles = cpu.run_until_done(5_000);
    (cpu, cycles)
}

fn summary_of(doc: &str) -> TraceSummary {
    validate(doc).expect("exported trace passes structural validation")
}

#[test]
fn exported_trace_is_schema_valid() {
    let (cpu, cycles) = traced_run(42);
    let doc = cpu.chrome_trace().to_json();
    let summary = summary_of(&doc);
    assert!(summary.spans > 0, "a {cycles}-cycle run must produce spans");
    // Per-context tracks plus the machine (bubble) track are named.
    assert_eq!(summary.events - summary.spans, 1 + 2 + 1, "process + 2 ctx + machine metadata");
    assert!(summary.spans_by_track.keys().all(|&(pid, _)| pid == 0));
}

#[test]
fn export_is_deterministic_at_fixed_seed() {
    let (a, ca) = traced_run(7);
    let (b, cb) = traced_run(7);
    assert_eq!(ca, cb);
    assert_eq!(a.chrome_trace().to_json(), b.chrome_trace().to_json());
    let (c, _) = traced_run(8);
    assert_ne!(a.chrome_trace().to_json(), c.chrome_trace().to_json());
}

#[test]
fn span_durations_reconcile_with_breakdown() {
    let (cpu, _) = traced_run(42);
    let summary = summary_of(&cpu.chrome_trace().to_json());
    for cat in Category::ALL {
        let spans = summary.dur_by_name.get(cat.label()).copied().unwrap_or(0);
        assert_eq!(
            spans,
            cpu.breakdown().get(cat),
            "span total for {:?} must equal the breakdown",
            cat
        );
    }
}

#[test]
fn sweep_metrics_artifact_is_schedule_independent() {
    let spec = ExperimentSpec::new("schema", Scale::Ci)
        .uni(mixes::fp())
        .contexts([2])
        .quota(2_000)
        .warmup(500);
    let serial = Runner::serial().run(&spec).metrics_json();
    let parallel = Runner::new(4).run(&spec).metrics_json();
    assert_eq!(serial, parallel, "METRICS json must be byte-identical across job counts");
    interleave::obs::json::parse(&serial).expect("metrics artifact parses");
}

/// Validates an externally produced trace file when the harness points
/// at one (`INTERLEAVE_TRACE_FILE`, set by `scripts/check.sh` after the
/// `interleave-sim trace` smoke run); skipped otherwise.
#[test]
fn external_trace_file_is_schema_valid() {
    let Ok(path) = std::env::var("INTERLEAVE_TRACE_FILE") else {
        return;
    };
    let doc = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read INTERLEAVE_TRACE_FILE={path}: {e}"));
    let summary = summary_of(&doc);
    assert!(summary.spans > 0, "{path} contains no spans");
}
