//! End-to-end integration tests across the whole workspace, driven
//! through the facade crate.

use interleave::core::{ProcConfig, Processor, Scheme};
use interleave::mem::{MemConfig, UniMemSystem};
use interleave::mp::{splash_suite, MpSim};
use interleave::stats::Category;
use interleave::workloads::{mixes, spec, MultiprogramSim, OsModel, SyntheticApp};

#[test]
fn facade_quickstart_runs() {
    let mut cpu = Processor::new(
        ProcConfig::new(Scheme::Interleaved, 2),
        UniMemSystem::new(MemConfig::workstation()),
    );
    cpu.attach(0, Box::new(SyntheticApp::new(spec::water_uni(), 0, 42).with_limit(2_000)));
    cpu.attach(1, Box::new(SyntheticApp::new(spec::eqntott(), 1, 42).with_limit(2_000)));
    let cycles = cpu.run_until_done(10_000_000);
    assert!(cpu.is_done());
    assert_eq!(cpu.retired(0) + cpu.retired(1), 4_000);
    assert_eq!(cpu.breakdown().total() + cpu.drained_cycles(), cycles);
}

#[test]
fn every_scheme_completes_every_workload() {
    for workload in mixes::all() {
        for (scheme, contexts) in
            [(Scheme::Single, 1), (Scheme::Blocked, 2), (Scheme::Interleaved, 2)]
        {
            let r = MultiprogramSim::builder(workload.clone())
                .scheme(scheme)
                .contexts(contexts)
                .quota(1_500)
                .warmup(1_000)
                .os(OsModel { slice_cycles: 6_000, ..OsModel::scaled() })
                .build()
                .run();
            assert!(
                r.instructions >= 4 * 1_500,
                "{} under {scheme:?}x{contexts} retired too little",
                workload.name
            );
            assert_eq!(r.breakdown.total(), r.cycles, "{} accounting", workload.name);
        }
    }
}

#[test]
fn every_splash_app_completes_on_the_multiprocessor() {
    for app in splash_suite() {
        let name = app.name;
        let r = MpSim::builder(app)
            .scheme(Scheme::Interleaved)
            .nodes(4)
            .contexts(2)
            .work(16_000)
            .warmup(1_000)
            .build()
            .run();
        assert!(r.cycles > 0, "{name}");
        assert!(r.breakdown.get(Category::Busy) > 0, "{name}");
    }
}

#[test]
fn interleaved_workstation_gains_over_single_at_four_contexts() {
    let run = |scheme, contexts| {
        MultiprogramSim::builder(mixes::sp())
            .scheme(scheme)
            .contexts(contexts)
            .quota(8_000)
            .warmup(5_000)
            .build()
            .run()
            .throughput()
    };
    let single = run(Scheme::Single, 1);
    let interleaved = run(Scheme::Interleaved, 4);
    assert!(
        interleaved > single * 1.1,
        "interleaved x4 ({interleaved:.3}) should clearly beat single ({single:.3})"
    );
}

#[test]
fn multiprocessor_contexts_speed_up_memory_bound_apps() {
    let app = splash_suite().remove(0); // MP3D
    let run = |scheme, contexts| {
        MpSim::builder(app.clone())
            .scheme(scheme)
            .nodes(4)
            .contexts(contexts)
            .work(60_000)
            .warmup(2_000)
            .build()
            .run()
            .cycles
    };
    let single = run(Scheme::Single, 1);
    let interleaved = run(Scheme::Interleaved, 4);
    assert!(
        interleaved < single,
        "4-context interleaved ({interleaved}) should beat single-context ({single})"
    );
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let r = MultiprogramSim::builder(mixes::r0())
            .scheme(Scheme::Interleaved)
            .contexts(2)
            .quota(2_000)
            .warmup(1_000)
            .build()
            .run();
        (r.cycles, r.instructions)
    };
    assert_eq!(run(), run());

    let mp_run = || {
        MpSim::builder(splash_suite()[4].clone())
            .scheme(Scheme::Blocked)
            .nodes(2)
            .contexts(2)
            .work(12_000)
            .warmup(1_000)
            .build()
            .run()
            .cycles
    };
    assert_eq!(mp_run(), mp_run());
}
