//! The parallel sweep runner must be a pure optimization: running the
//! same `ExperimentSpec` serially or with any number of jobs yields
//! bit-identical results (same cells, same order, equal simulation
//! outputs). The same holds for idle-cycle skipping in the hot loop:
//! fixed-seed golden tests pin the simulated numbers, and skipping on
//! vs off must produce byte-identical metrics artifacts.

use std::path::PathBuf;

use interleave::bench::{checkpoint, merge, ExperimentSpec, Runner, Scale, Shard};
use interleave::core::Scheme;
use interleave::mp::{splash_suite, MpSim};
use interleave::stats::{Breakdown, Category};
use interleave::workloads::{mixes, MultiprogramSim};
use proptest::prelude::*;

fn small_grid() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new("determinism", Scale::Ci)
        .contexts([2, 4])
        .quota(2_000)
        .work(12_000)
        .warmup(500);
    for w in [mixes::ic(), mixes::fp()] {
        spec = spec.uni(w);
    }
    spec.mp(splash_suite()[0].clone())
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let spec = small_grid();
    let serial = Runner::serial().run(&spec);
    let parallel = Runner::new(4).run(&spec);
    assert_eq!(serial.jobs, 1);
    assert_eq!(parallel.jobs, 4);
    // 3 targets × (baseline + 2 counts × 2 schemes) = 15 cells.
    assert_eq!(serial.cells.len(), 15);
    assert!(serial.results_match(&parallel), "parallel sweep diverged from serial execution");
    // And the rendered artifacts agree too.
    assert_eq!(serial.to_table().to_csv(), parallel.to_table().to_csv());
}

#[test]
fn repeated_parallel_sweeps_are_reproducible() {
    let spec = small_grid();
    let first = Runner::new(4).run(&spec);
    let second = Runner::new(4).run(&spec);
    assert!(first.results_match(&second));
}

/// Asserts a breakdown matches golden per-category values in
/// `Category::ALL` order.
fn assert_breakdown(what: &str, got: &Breakdown, golden: [u64; 7]) {
    for (c, want) in Category::ALL.into_iter().zip(golden) {
        assert_eq!(got.get(c), want, "{what}: category {c:?} diverged from the golden value");
    }
}

/// Fixed-seed golden values for a uniprocessor multiprogramming run.
/// Any drift here means the event queue or idle skipping changed
/// simulated behaviour. Runs both with and without idle skipping: the
/// full results (every field, not just the breakdown) must be identical.
///
/// Values re-goldened once for the `engine::rand64` generator rewrite
/// (DESIGN.md, "Hot path v2"); the distribution-level oracles pin the
/// simulated behaviour across that stream change.
#[test]
fn uni_golden_values_with_and_without_idle_skip() {
    let run = |idle_skip: bool| {
        MultiprogramSim::builder(mixes::fp())
            .scheme(Scheme::Interleaved)
            .contexts(2)
            .quota(2_000)
            .warmup(500)
            .idle_skip(idle_skip)
            .build()
            .run()
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(on, off, "idle skipping changed a uniprocessor result");
    assert_eq!(on.cycles, 78_944);
    assert_eq!(on.instructions, 28_303);
    assert_breakdown(
        "uni fp/interleaved/2",
        &on.breakdown,
        [28_137, 13_165, 1_708, 9_848, 15_998, 0, 10_088],
    );

    let blocked = MultiprogramSim::builder(mixes::ic())
        .scheme(Scheme::Blocked)
        .contexts(4)
        .quota(2_000)
        .warmup(500)
        .build()
        .run();
    assert_eq!(blocked.cycles, 27_392);
    assert_eq!(blocked.instructions, 9_370);
    assert_breakdown(
        "uni ic/blocked/4",
        &blocked.breakdown,
        [9_343, 5_766, 50, 5_053, 1_049, 0, 6_131],
    );
}

/// Same as above for the multiprocessor lockstep loop, whose idle
/// skipping must also respect warmup and quota-check boundaries.
#[test]
fn mp_golden_values_with_and_without_idle_skip() {
    let run = |idle_skip: bool| {
        MpSim::builder(splash_suite()[0].clone())
            .scheme(Scheme::Interleaved)
            .nodes(4)
            .contexts(2)
            .work(12_000)
            .warmup(500)
            .idle_skip(idle_skip)
            .build()
            .run()
    };
    let on = run(true);
    let off = run(false);
    assert_eq!(on, off, "idle skipping changed a multiprocessor result");
    assert_eq!(on.cycles, 28_160);
    assert_breakdown(
        "mp splash0/interleaved/4x2",
        &on.breakdown,
        [12_626, 5_983, 1_460, 0, 81_550, 0, 11_021],
    );
}

/// The parallel multiprocessor driver is a pure host optimization: the
/// golden run above must reproduce bit-for-bit at every worker count,
/// including the full metrics registry.
#[test]
fn mp_golden_values_hold_at_every_mp_jobs() {
    let run = |jobs: usize| {
        MpSim::builder(splash_suite()[0].clone())
            .scheme(Scheme::Interleaved)
            .nodes(4)
            .contexts(2)
            .work(12_000)
            .warmup(500)
            .mp_jobs(jobs)
            .build()
            .run()
    };
    let serial = run(1);
    assert_eq!(serial.cycles, 28_160);
    for jobs in [2, 3, 4] {
        let parallel = run(jobs);
        assert_eq!(serial, parallel, "mp_jobs={jobs} diverged from the serial driver");
    }
}

/// Sweep-level check: a whole grid run with idle skipping disabled must
/// reproduce the default grid cell for cell, down to the serialized
/// metrics artifact bytes.
#[test]
fn idle_skip_produces_byte_identical_metrics_artifacts() {
    let on = Runner::new(2).run(&small_grid().idle_skip(true));
    let off = Runner::new(2).run(&small_grid().idle_skip(false));
    assert!(on.results_match(&off), "idle skipping changed sweep results");
    assert_eq!(
        on.metrics_json(),
        off.metrics_json(),
        "METRICS artifact must be byte-identical with idle skipping on or off"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `--shard K/N` partitioner must tile any grid: for every
    /// shard count the K slices are pairwise disjoint, their union is
    /// exactly the grid, and recomputing a slice yields the same
    /// indices (the property the merge gate stands on).
    #[test]
    fn shard_slices_partition_any_grid(grid_cells in 0usize..200, count in 1usize..=8) {
        let mut seen = vec![false; grid_cells];
        for index in 1..=count {
            let shard = Shard::new(index, count);
            let slice: Vec<usize> = shard.indices(grid_cells).collect();
            prop_assert_eq!(
                slice.clone(),
                shard.indices(grid_cells).collect::<Vec<usize>>(),
                "slice must be stable across invocations"
            );
            for i in slice {
                prop_assert!(i < grid_cells, "index {} outside the grid", i);
                prop_assert!(!seen[i], "index {} claimed by two shards", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&c| c), "shard union must cover the grid");
    }
}

/// The checkpoint key is the resume contract: it must be stable across
/// processes (same spec + cell -> same file name forever) and distinct
/// across cells, or a resumed sweep would silently reuse the wrong
/// result.
#[test]
fn checkpoint_keys_are_stable_and_distinct_across_the_grid() {
    let spec = small_grid();
    let cells = spec.cells();
    let keys: Vec<u64> = cells.iter().map(|c| checkpoint::cell_key(&spec, c)).collect();
    let again: Vec<u64> = cells.iter().map(|c| checkpoint::cell_key(&spec, c)).collect();
    assert_eq!(keys, again, "checkpoint keys must be stable across invocations");
    let mut unique = keys.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), cells.len(), "every cell must get a distinct checkpoint key");
    // A result-affecting knob moves every key.
    let tightened = small_grid().quota(1_000);
    assert_ne!(checkpoint::cell_key(&tightened, &cells[0]), keys[0]);
}

/// Drops the volatile host-side keys from a BENCH document, mirroring
/// scripts/determinism_gate.sh: the top-level
/// unix_timestamp/jobs/wall_ms/sim_cycles_per_sec lines and the inline
/// per-cell wall_ms/sim_cycles_per_sec fields.
fn strip_volatile(bench: &str) -> String {
    const TOP_LEVEL: [&str; 4] =
        ["  \"unix_timestamp\"", "  \"jobs\"", "  \"wall_ms\"", "  \"sim_cycles_per_sec\""];
    bench
        .lines()
        .filter(|line| !TOP_LEVEL.iter().any(|k| line.starts_with(k)))
        .map(|line| {
            let mut line = line.to_string();
            for key in ["\"wall_ms\": ", "\"sim_cycles_per_sec\": "] {
                while let Some(start) = line.find(key) {
                    let rest = &line[start..];
                    let len = rest.find(", ").map(|i| i + 2).unwrap_or(rest.len());
                    line.replace_range(start..start + len, "");
                }
            }
            line
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ilv_sweep_det_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The tentpole gate: running the grid as K disjoint shard processes
/// and folding the artifacts with `merge` must reproduce the
/// single-process `--jobs N` sweep byte-for-byte — METRICS strictly,
/// BENCH after stripping the volatile host keys.
#[test]
fn merge_of_shards_is_byte_identical_to_single_process_sweep() {
    let spec = small_grid();
    let reference = Runner::new(4).run(&spec);
    for count in [2, 3, 5] {
        let shard_dir = test_dir(&format!("shards{count}"));
        for index in 1..=count {
            let sweep = Runner::new(2).shard(Shard::new(index, count)).run(&spec);
            sweep.write_json(&shard_dir).unwrap();
            sweep.write_metrics_json(&shard_dir).unwrap();
        }
        let merged = merge::merge_dirs(&[shard_dir.clone()]).unwrap();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].shards, count);
        assert_eq!(merged[0].grid_cells, 15);
        assert_eq!(
            merged[0].metrics,
            reference.metrics_json(),
            "{count}-way merged METRICS must match the single-process artifact byte-for-byte"
        );
        assert_eq!(
            strip_volatile(&merged[0].bench),
            strip_volatile(&reference.to_json()),
            "{count}-way merged BENCH must match after stripping volatile host keys"
        );
        let _ = std::fs::remove_dir_all(&shard_dir);
    }
}

/// A sweep resumed from a fully checkpointed directory recomputes
/// nothing and still renders byte-identical artifacts.
#[test]
fn resumed_sweep_skips_cells_and_matches_artifacts() {
    let spec = small_grid();
    let ckpt = test_dir("resume");
    let cold = Runner::new(2).checkpoint_dir(&ckpt).run(&spec);
    assert_eq!(cold.resumed, 0);
    let warm = Runner::new(2).checkpoint_dir(&ckpt).run(&spec);
    assert_eq!(warm.resumed, 15, "every cell must resume from its checkpoint");
    assert!(cold.results_match(&warm));
    assert_eq!(cold.metrics_json(), warm.metrics_json());
    assert_eq!(strip_volatile(&cold.to_json()), strip_volatile(&warm.to_json()));
    let _ = std::fs::remove_dir_all(&ckpt);
}

#[test]
fn explicit_seed_axis_is_deterministic_and_distinct() {
    let base = small_grid();
    let seeded = |seed: u64| Runner::new(2).run(&base.clone().seeds([seed]));
    assert!(seeded(11).results_match(&seeded(11)));
    assert!(!seeded(11).results_match(&seeded(12)));
    // Scheme::Single baseline cells still come first per target.
    let sweep = seeded(11);
    assert_eq!(sweep.cells[0].0.scheme, Scheme::Single);
    assert_eq!(sweep.cells[0].0.seed, Some(11));
}
