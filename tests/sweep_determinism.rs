//! The parallel sweep runner must be a pure optimization: running the
//! same `ExperimentSpec` serially or with any number of jobs yields
//! bit-identical results (same cells, same order, equal simulation
//! outputs).

use interleave::bench::{ExperimentSpec, Runner, Scale};
use interleave::core::Scheme;
use interleave::mp::splash_suite;
use interleave::workloads::mixes;

fn small_grid() -> ExperimentSpec {
    let mut spec = ExperimentSpec::new("determinism", Scale::Ci)
        .contexts([2, 4])
        .quota(2_000)
        .work(12_000)
        .warmup(500);
    for w in [mixes::ic(), mixes::fp()] {
        spec = spec.uni(w);
    }
    spec.mp(splash_suite()[0].clone())
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let spec = small_grid();
    let serial = Runner::serial().run(&spec);
    let parallel = Runner::new(4).run(&spec);
    assert_eq!(serial.jobs, 1);
    assert_eq!(parallel.jobs, 4);
    // 3 targets × (baseline + 2 counts × 2 schemes) = 15 cells.
    assert_eq!(serial.cells.len(), 15);
    assert!(serial.results_match(&parallel), "parallel sweep diverged from serial execution");
    // And the rendered artifacts agree too.
    assert_eq!(serial.to_table().to_csv(), parallel.to_table().to_csv());
}

#[test]
fn repeated_parallel_sweeps_are_reproducible() {
    let spec = small_grid();
    let first = Runner::new(4).run(&spec);
    let second = Runner::new(4).run(&spec);
    assert!(first.results_match(&second));
}

#[test]
fn explicit_seed_axis_is_deterministic_and_distinct() {
    let base = small_grid();
    let seeded = |seed: u64| Runner::new(2).run(&base.clone().seeds([seed]));
    assert!(seeded(11).results_match(&seeded(11)));
    assert!(!seeded(11).results_match(&seeded(12)));
    // Scheme::Single baseline cells still come first per target.
    let sweep = seeded(11);
    assert_eq!(sweep.cells[0].0.scheme, Scheme::Single);
    assert_eq!(sweep.cells[0].0.seed, Some(11));
}
