//! Integration tests asserting the paper's qualitative claims at reduced
//! scale (the full-scale numbers are produced by `cargo bench`).

use interleave::core::{ProcConfig, Processor, Scheme, VecSource};
use interleave::isa::{Instr, Reg};
use interleave::mem::{MemConfig, UniMemSystem};
use interleave::stats::Category;

fn alu(pc: u64) -> Instr {
    Instr::alu(pc, Some(Reg::int(1)), Some(Reg::int(2)), None)
}

fn machine(scheme: Scheme, contexts: usize) -> Processor<UniMemSystem> {
    let mut cfg = MemConfig::workstation();
    cfg.tlbs_enabled = false;
    let mut cpu = Processor::new(ProcConfig::new(scheme, contexts), UniMemSystem::new(cfg));
    for pc in (0..0x8000u64).step_by(32) {
        cpu.port_mut().preload_inst(pc);
        cpu.port_mut().preload_inst(0x1000_0000 + pc);
    }
    cpu
}

/// Section 2.2 / Figure 2: the blocked scheme's cache-miss switch costs
/// about the pipeline depth; Section 3: the interleaved scheme's costs
/// only that context's pipeline occupancy.
#[test]
fn claim_switch_costs() {
    let cost = |scheme| {
        let mut cpu = machine(scheme, 4);
        let mut prog = vec![alu(0x100), alu(0x104)];
        prog.push(Instr::load(0x108, Reg::int(4), Reg::int(29), 0x8000_0000));
        prog.extend((0..8).map(|i| alu(0x10C + i * 4)));
        cpu.attach(0, Box::new(VecSource::new(prog)));
        for c in 1..4 {
            let base = 0x1000_0000 + 0x400 * c as u64;
            cpu.attach(c, Box::new(VecSource::new((0..40).map(move |i| alu(base + i * 4)))));
        }
        cpu.run_until_done(100_000);
        assert!(cpu.is_done());
        cpu.breakdown().get(Category::Switch)
    };
    let blocked = cost(Scheme::Blocked);
    let interleaved = cost(Scheme::Interleaved);
    assert_eq!(blocked, 7, "blocked scheme should pay the pipeline depth");
    assert!(interleaved <= 3, "interleaved cost should be tiny, got {interleaved}");
}

/// Section 3: interleaving contexts hides pipeline dependencies that
/// would stall a single context.
#[test]
fn claim_dependency_hiding() {
    let chain = |base: u64| {
        VecSource::new((0..64).map(move |i| {
            Instr::arith(
                base + i * 4,
                interleave::isa::Op::FpAdd,
                Some(Reg::fp(3)),
                Some(Reg::fp(3)),
                None,
            )
        }))
    };
    let mut single = machine(Scheme::Single, 1);
    single.attach(0, Box::new(chain(0x100)));
    single.run_until_done(100_000);
    let single_stall = single.breakdown().instr_stall();
    // FP add latency 5: back-to-back dependent adds stall 4 cycles each.
    assert!(single_stall >= 4 * 60, "single context should stall, got {single_stall}");

    let mut inter = machine(Scheme::Interleaved, 4);
    for c in 0..4 {
        inter.attach(c, Box::new(chain(0x1000_0000 + 0x400 * c as u64)));
    }
    inter.run_until_done(100_000);
    // Four interleaved chains space the dependent adds four cycles apart,
    // leaving one residual stall cycle per add (latency 5 needs five
    // contexts to hide completely).
    let inter_stall = inter.breakdown().instr_stall();
    assert!(
        inter_stall <= single_stall / 3,
        "interleaving should hide most dependency stalls ({inter_stall} vs {single_stall})"
    );
}

/// Introduction: the multiple-context processor must run a single thread
/// as fast as the single-context processor.
#[test]
fn claim_single_thread_parity() {
    let prog: Vec<Instr> = (0..512).map(|i| alu(0x100 + i * 4)).collect();
    let run = |scheme, contexts| {
        let mut cpu = machine(scheme, contexts);
        cpu.attach(0, Box::new(VecSource::new(prog.clone())));
        cpu.run_until_done(100_000)
    };
    let single = run(Scheme::Single, 1);
    let interleaved = run(Scheme::Interleaved, 4);
    assert_eq!(
        single, interleaved,
        "one loaded context on the interleaved processor must match single-context speed"
    );
}

/// Section 4.2 / Table 4: the backoff instruction tolerates long
/// instruction latencies (FP divides) on the interleaved scheme.
#[test]
fn claim_backoff_tolerates_divides() {
    let divider_thread = |base: u64| {
        let mut prog = Vec::new();
        for i in 0..8u64 {
            let pc = base + i * 16;
            prog.push(Instr::arith(
                pc,
                interleave::isa::Op::FpDivDouble,
                Some(Reg::fp(1)),
                Some(Reg::fp(2)),
                None,
            ));
            prog.push(Instr::backoff(pc + 4, 57));
            prog.push(Instr::arith(
                pc + 8,
                interleave::isa::Op::FpAdd,
                Some(Reg::fp(3)),
                Some(Reg::fp(1)),
                None,
            ));
        }
        VecSource::new(prog)
    };
    let filler = |base: u64| VecSource::new((0..600).map(move |i| alu(base + i * 4)));

    let mut cpu = machine(Scheme::Interleaved, 2);
    cpu.attach(0, Box::new(divider_thread(0x100)));
    cpu.attach(1, Box::new(filler(0x1000_0000)));
    cpu.run_until_done(100_000);
    assert!(cpu.is_done());
    // The filler work almost completely covers the divide latencies: long
    // instruction stalls nearly vanish.
    let long = cpu.breakdown().get(Category::InstrLong);
    assert!(long < 40, "backoff should cover the divide latency, got {long} long-stall cycles");
}
