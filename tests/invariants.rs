//! Integration tests for the validation layer: clean runs stay clean
//! with every checker enabled, differential oracles hold across the
//! scheme grid, and a deliberately corrupted directory is caught with a
//! replayable report naming the cycle and context.

use std::panic::{catch_unwind, AssertUnwindSafe};

use interleave_core::Scheme;
use interleave_mp::{splash_suite, MpSim};
use interleave_obs::validate::Violation;
use interleave_workloads::litmus;
use proptest::prelude::*;

#[test]
fn violation_reports_name_cycle_context_and_seed() {
    let v = Violation::new(
        "mp.directory",
        "dirty line has an out-of-range owner",
        4242,
        "line 0x40".to_string(),
    )
    .with_context(9)
    .with_seed(0x1994_0501);
    let msg = v.to_string();
    assert!(msg.contains("validate[mp.directory]"), "component missing: {msg}");
    assert!(msg.contains("at cycle 4242"), "cycle missing: {msg}");
    assert!(msg.contains("context 9"), "context missing: {msg}");
    assert!(msg.contains("seed 0x19940501"), "seed missing: {msg}");
    assert!(msg.contains("line 0x40"), "detail missing: {msg}");
}

#[test]
fn multiprocessor_runs_clean_with_validation_on() {
    for (scheme, contexts) in [(Scheme::Single, 1), (Scheme::Interleaved, 2)] {
        let r = MpSim::builder(splash_suite()[0].clone())
            .scheme(scheme)
            .nodes(4)
            .contexts(contexts)
            .work(12_000)
            .warmup(1_000)
            .validate(true)
            .build()
            .run();
        assert!(r.cycles > 0, "{scheme:?} produced no measured cycles");
    }
}

/// The acceptance gate for the checkers themselves: corrupt the
/// directory mid-run (an out-of-range dirty owner — node 9 of 4) and
/// require the validation layer to halt the run with a report naming
/// the failure cycle and the offending context.
#[test]
fn seeded_directory_bug_is_caught_with_cycle_and_context() {
    let sim = MpSim::builder(splash_suite()[0].clone())
        .scheme(Scheme::Interleaved)
        .nodes(4)
        .contexts(2)
        .work(12_000)
        .warmup(500)
        .validate(true)
        .inject_directory_fault_at(2_000)
        .build();
    let result = catch_unwind(AssertUnwindSafe(|| sim.run()));
    let payload = result.expect_err("corrupted directory must not complete cleanly");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a message");
    assert!(msg.contains("validate[mp.directory]"), "wrong component: {msg}");
    assert!(msg.contains("dirty line has an out-of-range owner"), "wrong invariant: {msg}");
    assert!(msg.contains("at cycle"), "no cycle in report: {msg}");
    assert!(msg.contains("context 9"), "no offending context in report: {msg}");
    assert!(msg.contains("seed"), "no replayable seed in report: {msg}");
}

/// The same fault injected with validation off must also be injected
/// with validation on — guard against the checker passing only because
/// the fault plumbing silently stopped firing.
#[test]
fn fault_injection_is_exercised_only_with_validation() {
    let sim = MpSim::builder(splash_suite()[1].clone())
        .scheme(Scheme::Blocked)
        .nodes(2)
        .contexts(2)
        .work(8_000)
        .warmup(500)
        .validate(true)
        .inject_directory_fault_at(1_000)
        .build();
    assert!(catch_unwind(AssertUnwindSafe(|| sim.run())).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Differential oracle over a generated grid: idle-cycle skipping is
    /// bit-invisible and the fixed-work bound holds for every scheme,
    /// context count, and seed.
    #[test]
    fn litmus_oracles_hold_across_generated_cases(
        (scheme_idx, contexts) in prop_oneof![
            Just((0usize, 1usize)),
            (1usize..4, 2usize..=4).prop_map(|(s, c)| (s, c)),
        ],
        seed in any::<u32>(),
    ) {
        let scheme = [Scheme::Single, Scheme::Blocked, Scheme::Interleaved, Scheme::FineGrained]
            [scheme_idx];
        let case = litmus::LitmusCase {
            name: "generated",
            scheme,
            contexts,
            quota: 1_200,
            seed: u64::from(seed),
        };
        litmus::check_idle_skip_invariance(&case).unwrap();
        litmus::check_fixed_work(&case).unwrap();
    }

    /// Litmus grid for the parallel multiprocessor driver: over a
    /// generated grid of applications, schemes, context counts, worker
    /// counts, and seeds, `mp_jobs` must be bit-invisible — the full
    /// result (cycles, breakdowns, directory stats, metric registry)
    /// equals the serial driver's, with the invariant checkers on.
    #[test]
    fn mp_jobs_is_bit_invisible_across_generated_grid(
        app_idx in 0usize..4,
        scheme_idx in 0usize..3,
        contexts in 1usize..=2,
        jobs in 2usize..=4,
        seed in any::<u32>(),
    ) {
        let scheme = [Scheme::Blocked, Scheme::Interleaved, Scheme::FineGrained][scheme_idx];
        let run = |mp_jobs: usize| {
            MpSim::builder(splash_suite()[app_idx].clone())
                .scheme(scheme)
                .nodes(4)
                .contexts(contexts)
                .work(6_000)
                .warmup(500)
                .seed(u64::from(seed))
                .validate(true)
                .mp_jobs(mp_jobs)
                .build()
                .run()
        };
        let serial = run(1);
        let sharded = run(jobs);
        prop_assert_eq!(serial, sharded, "mp_jobs={} diverged from the serial driver", jobs);
    }

    /// Adaptive lookahead widening must be bit-invisible across the same
    /// generated grid, at every worker count, with the invariant
    /// checkers on: the widened schedule only ever skips barriers whose
    /// exchanges would have been no-ops, so the full result (cycles,
    /// breakdowns, directory stats, metric registry) equals the fixed
    /// schedule's.
    #[test]
    fn adaptive_lookahead_is_bit_invisible_across_generated_grid(
        app_idx in 0usize..4,
        scheme_idx in 0usize..3,
        contexts in 1usize..=2,
        jobs in 1usize..=4,
        seed in any::<u32>(),
    ) {
        let scheme = [Scheme::Blocked, Scheme::Interleaved, Scheme::FineGrained][scheme_idx];
        let run = |adaptive: bool| {
            MpSim::builder(splash_suite()[app_idx].clone())
                .scheme(scheme)
                .nodes(4)
                .contexts(contexts)
                .work(6_000)
                .warmup(500)
                .seed(u64::from(seed))
                .validate(true)
                .mp_jobs(jobs)
                .adaptive(adaptive)
                .build()
                .run()
        };
        let fixed = run(false);
        let adaptive = run(true);
        prop_assert_eq!(
            fixed, adaptive,
            "adaptive lookahead diverged from the fixed schedule at mp_jobs={}", jobs
        );
    }
}
